package memmgr

import (
	"fmt"

	"repro/internal/program"
	"repro/internal/recompute"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// StdReplayer reconstructs dropped forward tensors segment by segment
// (§3.4), honoring each segment's resolved strategy: speed-centric
// segments replay once and keep the results, memory-centric segments
// replay the needed prefix with a streaming free behind the replay
// front.
type StdReplayer struct {
	rt    *Runtime
	resid Residency
	off   OffloadEngine

	// Per-step scratch, reused across ReplayFor calls so the backward
	// pass of a deep network does not allocate per step. The returned
	// freeAfter slice is consumed by the caller within the same step.
	needs     []segNeed
	keep      map[int]bool
	deps      []sim.Event
	freeAfter []*tensor.Tensor
}

// segNeed records how deep into a recompute segment one backward
// step's reads reach.
type segNeed struct {
	seg    *recompute.Segment
	maxPos int
}

// NewStdReplayer wires the standard replayer over the runtime, its
// residency manager and its offload engine.
func NewStdReplayer(rt *Runtime, resid Residency, off OffloadEngine) *StdReplayer {
	return &StdReplayer{rt: rt, resid: resid, off: off}
}

// ReplayFor reconstructs the dropped forward tensors this backward
// step reads, segment by segment. It returns the tensors that must be
// freed right after the step (memory-centric replays).
func (rp *StdReplayer) ReplayFor(st *program.Step) ([]*tensor.Tensor, error) {
	rt := rp.rt
	rp.freeAfter = rp.freeAfter[:0]
	needs := rp.needs[:0]
	for _, t := range st.Reads {
		nd := rt.Owner[t.ID]
		if nd < 0 || !rt.RPlan.Drop[nd] || rt.TS[t.ID].OnGPU {
			continue
		}
		seg := rt.RPlan.SegmentOf[nd]
		if seg == nil {
			rp.needs = needs
			return nil, fmt.Errorf("dropped tensor %s has no segment", t)
		}
		pos := -1
		for i, m := range seg.Members {
			if m.ID == nd {
				pos = i
				break
			}
		}
		found := false
		for i := range needs {
			if needs[i].seg == seg {
				if pos > needs[i].maxPos {
					needs[i].maxPos = pos
				}
				found = true
			}
		}
		if !found {
			needs = append(needs, segNeed{seg: seg, maxPos: pos})
		}
	}
	rp.needs = needs
	var keep map[int]bool
	if len(needs) > 0 {
		if rp.keep == nil {
			rp.keep = make(map[int]bool, len(st.Reads))
		} else {
			clear(rp.keep)
		}
		keep = rp.keep
		for _, t := range st.Reads {
			keep[t.ID] = true
		}
	}
	for _, n := range needs {
		if !n.seg.UseMemoryCentric {
			// Speed-centric: replay the whole segment once; later
			// backward steps inside it reuse the results, which
			// liveness frees at their true last use.
			if rt.SegReplayed[n.seg.ID] {
				continue
			}
			if err := rp.replayMembers(n.seg, len(n.seg.Members)-1, nil, nil); err != nil {
				return nil, err
			}
			rt.SegReplayed[n.seg.ID] = true
		} else {
			// Memory-centric: replay only the needed prefix, freeing
			// the chain behind the replay front (streaming), and free
			// the rest immediately after this step.
			if err := rp.replayMembers(n.seg, n.maxPos, &rp.freeAfter, keep); err != nil {
				return nil, err
			}
		}
	}
	return rp.freeAfter, nil
}

// replayMembers re-runs the forward of segment members [0..upTo],
// ensuring each replay's own inputs are resident first. In streaming
// (memory-centric) mode — keep != nil — inputs behind the replay front
// are freed as soon as the next member has consumed them, unless the
// triggering step itself needs them, so the replay's transient
// footprint never exceeds two members plus the backward working set.
func (rp *StdReplayer) replayMembers(seg *recompute.Segment, upTo int, freeAfter *[]*tensor.Tensor, keep map[int]bool) error {
	rt := rp.rt
	for i := 0; i <= upTo; i++ {
		m := seg.Members[i]
		out := rt.P.Out[m.ID]
		if rt.TS[out.ID].OnGPU {
			continue
		}
		deps := rp.deps[:0]
		for _, pr := range m.Prev {
			in := rt.P.Out[pr.ID]
			s := &rt.TS[in.ID]
			if !s.OnGPU {
				if !s.OnHost {
					return fmt.Errorf("replay of %s: input %s unavailable", m.Name(), in)
				}
				if err := rp.off.Fetch(in); err != nil {
					return err
				}
			}
			if s.InflightValid {
				deps = append(deps, s.Inflight)
			}
			in.Locked = true
		}
		rp.deps = deps
		if err := rp.resid.Alloc(out); err != nil {
			return err
		}
		if rt.Cache != nil {
			rt.Cache.In(out)
		}
		dur := m.L.FwdTime(rt.Cfg.Device, 1.0)
		ev := rt.Compute.Submit(rt.TL.Now(), dur, deps...)
		rt.Span("compute", "replay "+m.Name(), ev, dur)
		rt.TL.Wait(ev)
		rt.Res.ExtraForwards++
		for _, pr := range m.Prev {
			in := rt.P.Out[pr.ID]
			in.Locked = false
			if keep == nil || keep[in.ID] {
				continue
			}
			// Streaming free: the input is recoverable either from its
			// host copy or by another replay (dropped member).
			s := &rt.TS[in.ID]
			recoverable := s.OnHost || (rt.Owner[in.ID] >= 0 && rt.RPlan.Drop[rt.Owner[in.ID]])
			if s.OnGPU && recoverable {
				rp.resid.FreeGPU(in)
			}
		}
		if freeAfter != nil {
			*freeAfter = append(*freeAfter, out)
		}
	}
	return nil
}

// NullReplayer is the no-recomputation policy: nothing is ever
// dropped, so there is never anything to replay.
type NullReplayer struct{}

// ReplayFor returns no replays.
func (NullReplayer) ReplayFor(*program.Step) ([]*tensor.Tensor, error) { return nil, nil }
