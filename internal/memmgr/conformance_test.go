package memmgr_test

// Conformance suite for MemoryManager implementations: every named
// manager must obey the executor's invariants (OOM surfacing,
// determinism, peak bounds, offload-before-fetch ordering), and the
// three headline policies must reproduce the seed executor's Results
// exactly when run against the equivalent flag-driven configuration.

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memmgr"
	"repro/internal/nnet"
	"repro/internal/recompute"
	"repro/internal/utp"
)

// conformanceManagers are the implementations the suite exercises:
// the paper's runtime, the vDNN-style offload-everything policy and
// the naive keep-everything baseline, plus the framework models that
// ride on the same seam.
var conformanceManagers = []string{
	"superneurons", "vdnn", "naive",
	"caffe", "torch", "mxnet", "tensorflow", "tensorflow-swap",
}

func TestRegistry(t *testing.T) {
	names := memmgr.Names()
	for _, want := range append([]string{"custom"}, conformanceManagers...) {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("manager %q not registered (have %v)", want, names)
		}
	}
	if _, ok := memmgr.Lookup(""); !ok {
		t.Error("empty name must resolve to the flag-driven manager")
	}
	if m, _ := memmgr.Lookup(""); m.Name() != "custom" {
		t.Errorf("empty name resolved to %q, want custom", m.Name())
	}
	if _, ok := memmgr.Lookup("does-not-exist"); ok {
		t.Error("unknown manager must not resolve")
	}
}

func TestUnknownManagerErrors(t *testing.T) {
	cfg := core.Config{Manager: "does-not-exist", Device: hw.TeslaK40c}
	_, err := core.Run(nnet.AlexNet(8), cfg)
	if err == nil || !strings.Contains(err.Error(), "unknown memory manager") {
		t.Fatalf("err = %v, want unknown-manager error", err)
	}
}

// TestConformanceInvariants runs every manager through ample and
// pressured configurations, checking the shared executor contract.
func TestConformanceInvariants(t *testing.T) {
	for _, name := range conformanceManagers {
		t.Run(name, func(t *testing.T) {
			cfg := core.Config{Manager: name, Device: hw.TeslaK40c, CollectTrace: true}
			r1, err := core.Run(nnet.AlexNet(64), cfg)
			if err != nil {
				t.Fatalf("ample run failed: %v", err)
			}
			r2, err := core.Run(nnet.AlexNet(64), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Error("identical configurations must produce identical Results")
			}
			if r1.IterTime <= 0 || r1.Throughput <= 0 {
				t.Errorf("degenerate timing: %v / %v", r1.IterTime, r1.Throughput)
			}
			if r1.PeakResident < r1.LPeak {
				t.Errorf("peak %d below max(l_i) %d", r1.PeakResident, r1.LPeak)
			}
			if r1.PeakResident > r1.BaselineBytes {
				t.Errorf("peak %d above Σf+Σb %d", r1.PeakResident, r1.BaselineBytes)
			}
			checkOffloadFetchOrdering(t, r1)

			// Keep-everything policies move no data. (Liveness-based
			// managers without swapping, like mxnet, still re-upload
			// the host-backed input batch, so they are not listed.)
			switch name {
			case "naive", "caffe", "torch":
				if r1.TotalTraffic() != 0 {
					t.Errorf("%s moved %d bytes; keep-resident policies must not", name, r1.TotalTraffic())
				}
			}

			// A pool too small for even the persistent state must
			// surface the OOM sentinel, whatever the policy.
			tiny := core.Config{Manager: name, Device: hw.TeslaK40c, PoolBytes: 32 * hw.MiB}
			if _, err := core.Run(nnet.AlexNet(256), tiny); !errors.Is(err, core.ErrOutOfMemory) {
				t.Errorf("tiny pool err = %v, want ErrOutOfMemory", err)
			}

			// Under pressure each manager either trains (with its peak
			// still bounded) or OOMs cleanly — never hangs or corrupts
			// accounting (core.Run checks for leaks internally).
			pressured := core.Config{Manager: name, Device: hw.TeslaK40c,
				PoolBytes: 2200 * hw.MiB, CollectTrace: true}
			rp, err := core.Run(nnet.AlexNet(200), pressured)
			if err != nil {
				if !errors.Is(err, core.ErrOutOfMemory) {
					t.Fatalf("pressured run: %v", err)
				}
				return
			}
			if rp.PoolPeak > pressured.PoolBytes {
				t.Errorf("pool peak %d above capacity %d", rp.PoolPeak, pressured.PoolBytes)
			}
			checkOffloadFetchOrdering(t, rp)
		})
	}
}

// checkOffloadFetchOrdering verifies the UTP protocol on the recorded
// trace: a tensor's first H2D fetch must not start before the D2H copy
// that put it on the host has completed (reading back a partially
// offloaded tensor would be garbage on real hardware).
func checkOffloadFetchOrdering(t *testing.T, r *core.Result) {
	t.Helper()
	type window struct {
		firstOffloadEnd    int64
		firstFetchStart    int64
		offloaded, fetched bool
	}
	byTensor := map[string]*window{}
	get := func(name string) *window {
		w := byTensor[name]
		if w == nil {
			w = &window{}
			byTensor[name] = w
		}
		return w
	}
	for _, s := range r.Trace {
		switch {
		case strings.HasPrefix(s.Name, "offload "), strings.HasPrefix(s.Name, "evict "):
			name := s.Name[strings.Index(s.Name, " ")+1:]
			w := get(name)
			if !w.offloaded || int64(s.End) < w.firstOffloadEnd {
				w.firstOffloadEnd = int64(s.End)
			}
			w.offloaded = true
		case strings.HasPrefix(s.Name, "fetch "):
			name := s.Name[len("fetch "):]
			w := get(name)
			if !w.fetched || int64(s.Start) < w.firstFetchStart {
				w.firstFetchStart = int64(s.Start)
			}
			w.fetched = true
		}
	}
	for name, w := range byTensor {
		// A fetch without a recorded offload is legal for exactly one
		// tensor: the input batch, which is host-backed by the data
		// pipeline at zero D2H cost (no span).
		if w.fetched && !w.offloaded && name != "data.y" {
			t.Errorf("tensor %s fetched but never offloaded", name)
		}
		if w.fetched && w.offloaded && w.firstFetchStart < w.firstOffloadEnd {
			t.Errorf("tensor %s fetched at %d before its offload completed at %d",
				name, w.firstFetchStart, w.firstOffloadEnd)
		}
	}
}

// TestManagersMatchSeedExecutor is the refactor's acceptance check:
// each headline manager must produce Results identical to the seed
// executor running the equivalent flag combination — including the
// recompute replay counts, traffic and virtual-time totals.
func TestManagersMatchSeedExecutor(t *testing.T) {
	// The flag surfaces are written out independently of the
	// managers' donor configs on purpose: a typo in managers.go (a
	// wrong cap, a lost pageable link) must fail here, not silently
	// shift the published capacity tables.
	flagEquivalents := map[string]func(d hw.DeviceSpec) core.Config{
		"superneurons": core.SuperNeurons,
		"naive":        core.Baseline,
		"vdnn": func(d hw.DeviceSpec) core.Config {
			return core.Config{
				Device: d, HostLink: hw.PCIePinned,
				UseMemPool: true, DynamicWorkspace: true,
				WorkspaceLimit: 512 * hw.MiB,
				Liveness:       true,
				Offload:        utp.OffloadSwapAll,
				Prefetch:       true,
			}
		},
		"mxnet": func(d hw.DeviceSpec) core.Config {
			return core.Config{
				Device: d, HostLink: hw.PCIePinned,
				UseMemPool: true, DynamicWorkspace: true,
				WorkspaceLimit: 1 * hw.GiB,
				Liveness:       true,
				Recompute:      recompute.SpeedCentric,
			}
		},
		"caffe": func(d hw.DeviceSpec) core.Config {
			return core.Config{
				Device: d, HostLink: hw.PCIePinned,
				UseMemPool: true, DynamicWorkspace: true,
				WorkspaceLimit: 8 * hw.MiB,
			}
		},
		"torch": func(d hw.DeviceSpec) core.Config {
			return core.Config{
				Device: d, HostLink: hw.PCIePinned,
				UseMemPool: true, DynamicWorkspace: true,
				WorkspaceLimit: 32 * hw.MiB,
				InPlaceAct:     true,
			}
		},
		"tensorflow": func(d hw.DeviceSpec) core.Config {
			return core.Config{
				Device: d, HostLink: hw.PCIePageable,
				UseMemPool: true, DynamicWorkspace: true,
				Liveness: true,
			}
		},
		"tensorflow-swap": func(d hw.DeviceSpec) core.Config {
			return core.Config{
				Device: d, HostLink: hw.PCIePageable,
				UseMemPool: true, DynamicWorkspace: true,
				Liveness: true,
				Offload:  utp.OffloadSwapAll,
			}
		},
	}
	builds := []func() *nnet.Net{
		func() *nnet.Net { return nnet.AlexNet(200) },
		func() *nnet.Net { return nnet.ResNet(50, 16) },
	}
	for name, flags := range flagEquivalents {
		for _, build := range builds {
			net := build()
			managed, err := core.Run(build(), core.Config{Manager: name, Device: hw.TeslaK40c})
			if err != nil {
				t.Fatalf("%s on %s: %v", name, net.Name, err)
			}
			seed, err := core.Run(build(), flags(hw.TeslaK40c))
			if err != nil {
				t.Fatalf("flags for %s on %s: %v", name, net.Name, err)
			}
			if !reflect.DeepEqual(managed, seed) {
				t.Errorf("%s on %s: managed Result differs from seed executor's", name, net.Name)
			}
		}
	}
}

// TestManagerCapacityOrdering checks the policy-level behavior the
// decomposition must preserve: the paper's runtime trains strictly
// larger workloads than vDNN, which beats the naive baseline.
func TestManagerCapacityOrdering(t *testing.T) {
	fits := func(manager string, batch int) bool {
		_, err := core.Run(nnet.ResNet(50, batch), core.Config{Manager: manager, Device: hw.TeslaK40c})
		if err != nil && !errors.Is(err, core.ErrOutOfMemory) {
			t.Fatalf("%s: %v", manager, err)
		}
		return err == nil
	}
	if !fits("superneurons", 224) {
		t.Error("superneurons must train ResNet-50 at batch 224 in 12 GB")
	}
	if fits("naive", 224) {
		t.Error("naive baseline must not fit ResNet-50 at batch 224")
	}
	if !fits("vdnn", 64) || fits("vdnn", 1024) {
		t.Error("vdnn capacity out of expected band")
	}
	if fits("naive", 64) {
		t.Error("naive baseline should already fail at batch 64")
	}
}
