package memmgr

import (
	"repro/internal/layers"
	"repro/internal/program"
	"repro/internal/sim"
)

// tunedAlgo is one cached autotune result.
type tunedAlgo struct {
	algo   layers.Algo
	budget int64
}

// StdTuner picks the convolution algorithm for a step under the given
// workspace budget. With Config.AutotuneConv it emulates
// cudnnFindConvolutionForwardAlgorithm: the first time a layer is
// planned (or when the budget no longer covers the cached choice)
// every memory-feasible candidate runs once on the compute engine and
// the fastest is cached. The cache persists across iterations, so the
// probing cost is paid once per run.
type StdTuner struct {
	rt *Runtime
	// algoCache holds autotuned convolution choices per step index,
	// keyed with the workspace budget they were tuned under.
	algoCache map[int]tunedAlgo
}

// NewStdTuner wires the standard workspace tuner over the runtime.
func NewStdTuner(rt *Runtime) *StdTuner { return &StdTuner{rt: rt} }

// SelectAlgo picks the convolution algorithm for the step.
func (w *StdTuner) SelectAlgo(st *program.Step, budget int64) layers.Algo {
	rt := w.rt
	if !rt.Cfg.AutotuneConv {
		return st.Node.L.BestAlgoWithin(budget)
	}
	if w.algoCache == nil {
		w.algoCache = make(map[int]tunedAlgo)
	}
	if c, ok := w.algoCache[st.Index]; ok && c.algo.Workspace <= budget && c.budget <= budget {
		return c.algo
	}
	best := layers.Algo{Kind: layers.AlgoImplicitGEMM, Speedup: 1.0}
	var bestTime sim.Duration = 1 << 62
	for _, a := range st.Node.L.ConvAlgos() {
		if a.Workspace > budget {
			continue
		}
		var dur sim.Duration
		if st.Phase == program.Forward {
			dur = st.Node.L.FwdTime(rt.Cfg.Device, a.Speedup)
		} else {
			dur = st.Node.L.BwdTime(rt.Cfg.Device, a.Speedup)
		}
		// The probe executes for real, like cudnnFind.
		ev := rt.Compute.Submit(rt.TL.Now(), dur)
		rt.Span("compute", "autotune "+st.Label(), ev, dur)
		rt.TL.Wait(ev)
		if dur < bestTime {
			bestTime = dur
			best = a
		}
	}
	w.algoCache[st.Index] = tunedAlgo{algo: best, budget: budget}
	return best
}
