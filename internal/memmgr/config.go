package memmgr

import (
	"repro/internal/gpumem"
	"repro/internal/hw"
	"repro/internal/recompute"
	"repro/internal/tcache"
	"repro/internal/utp"
)

// ExternalPool describes one external memory space of the Unified
// Tensor Pool (Fig. 7 of the paper).
type ExternalPool struct {
	Name  string
	Bytes int64
	Link  hw.LinkSpec
}

// PeerGPUPool returns a peer GPU's DRAM reachable over the same PCIe
// switch (~10 GB/s).
func PeerGPUPool(bytes int64) ExternalPool {
	return ExternalPool{Name: "peer-gpu", Bytes: bytes, Link: hw.PCIeP2P}
}

// RemotePool returns remote CPU/GPU DRAM over GPUDirect RDMA (~6 GB/s).
func RemotePool(bytes int64) ExternalPool {
	return ExternalPool{Name: "remote-rdma", Bytes: bytes, Link: hw.GPUDirectRDMA}
}

// Config selects the device and the memory/performance techniques for
// a run.
type Config struct {
	// Manager names the MemoryManager policy driving the run. The
	// empty string selects the flag-driven manager, which interprets
	// the technique flags below literally (how the ablation studies
	// toggle individual mechanisms). Named managers (see Names())
	// own the technique flags and override them, keeping only the
	// capacity and instrumentation fields of this Config.
	Manager string

	// Device is the simulated GPU; HostLink the CPU↔GPU interconnect
	// (pinned for SuperNeurons, pageable for TensorFlow-style swapping).
	Device   hw.DeviceSpec
	HostLink hw.LinkSpec

	// PoolBytes bounds the GPU functional memory (defaults to the
	// device's usable bytes). The Fig. 12 experiments shrink it.
	PoolBytes int64
	// HostBytes bounds pinned host memory (defaults to 256 GiB).
	HostBytes int64

	// ExternalPools extends the Unified Tensor Pool beyond local CPU
	// DRAM (the paper's Fig. 7 hierarchy: peer-GPU DRAM under the same
	// PCIe switch, remote CPU/GPU DRAM over GPUDirect RDMA). Offloads
	// fill the pools in order; empty means the single local CPU pool
	// described by HostBytes/HostLink.
	ExternalPools []ExternalPool

	// SharedHost, when set, is used as the primary host pool instead of
	// a fresh private one: co-tenant runtimes on the same device hand
	// the SAME pool to every job so their offloaded tensors and spilled
	// floors compete for one host-side spill budget — the device
	// planner's (internal/memplan) shared spill pool made concrete.
	// HostBytes is ignored when SharedHost is set.
	SharedHost *gpumem.Pool

	// UseMemPool selects the preallocated heap pool; false uses the
	// cudaMalloc/cudaFree cost model (Table 2's comparison).
	UseMemPool bool

	// Liveness enables freeing tensors at their last use (§3.2).
	Liveness bool
	// Offload selects the Unified Tensor Pool mode (§3.3).
	Offload utp.Mode
	// Prefetch enables the one-checkpoint-ahead prefetching; without
	// it offloaded tensors are fetched on demand at first use.
	Prefetch bool
	// TensorCache enables the LRU cache (§3.3.2): offloads become
	// lazy (eviction-driven) instead of eager. CachePolicy selects the
	// replacement policy (LRU, the paper's choice, by default).
	TensorCache bool
	CachePolicy tcache.Policy
	// Recompute selects the recomputation strategy (§3.4).
	Recompute recompute.Strategy
	// DynamicWorkspace enables the per-step convolution algorithm
	// selection under the remaining free bytes (§3.5); off forces the
	// zero-workspace implicit GEMM.
	DynamicWorkspace bool
	// WorkspaceLimit caps the per-layer workspace (0 = only the free
	// bytes limit). The competing frameworks ship static caps — e.g.
	// Caffe requests at most 8 MiB per convolution — which is the
	// "naive method on allocating the convolution workspace" §2.2
	// criticizes.
	WorkspaceLimit int64

	// InPlaceAct shares activation/dropout buffers with their
	// producers (the Torch-style in-place optimization §2.2 mentions);
	// meaningful only for framework policy models without
	// recomputation.
	InPlaceAct bool

	// Iterations is how many training iterations to simulate (the
	// profile is recorded on the last one). Defaults to 1.
	Iterations int

	// BatchSchedule declares a per-iteration batch schedule for
	// dynamic workloads: entry i is the batch size of iteration i
	// (cycling when Iterations exceeds its length). Only core's
	// dynamic run loop honors it — the program is rebuilt for the
	// incoming shape at each iteration boundary. Empty means every
	// iteration reuses the network's static batch.
	BatchSchedule []int
	// AdaptivePlan enables the online adaptive planner for dynamic
	// runs: instead of replaying the iteration-0 plan verbatim, the
	// offload/prefetch/recompute knobs are revised at iteration
	// boundaries from the previous iterations' measured signals
	// (stall time, pool fragmentation, cache hit rate, failed
	// prefetches, OOM near-misses). See Adaptive.
	AdaptivePlan bool

	// CollectTrace records every kernel and transfer as a timeline
	// span (Result.Trace) for Chrome-trace export via internal/trace.
	CollectTrace bool

	// SGDUpdate appends the momentum-SGD weight update to each
	// iteration (read parameters, gradients and momentum, write
	// parameters and momentum — a bandwidth-bound pass over the
	// persistent state). The paper's step-wise profiles cover only
	// forward+backward, so this defaults off.
	SGDUpdate bool

	// AutotuneConv models cuDNN-find style algorithm selection: on a
	// layer's first encounter (or when the workspace budget band
	// changes) the runtime executes every memory-feasible convolution
	// algorithm once and caches the winner — "the runtime benchmarks
	// all the memory-feasible convolution algorithms to pick up the
	// fastest one" (§3.5). Off, selection is instantaneous.
	AutotuneConv bool
}

// SuperNeuronsConfig returns the full configuration of the paper's
// system on the given device.
func SuperNeuronsConfig(d hw.DeviceSpec) Config {
	return Config{
		Device:           d,
		HostLink:         hw.PCIePinned,
		UseMemPool:       true,
		Liveness:         true,
		Offload:          utp.OffloadConvAndKept,
		Prefetch:         true,
		TensorCache:      true,
		Recompute:        recompute.CostAware,
		DynamicWorkspace: true,
	}
}

// BaselineConfig returns the naive network-wide allocation strategy:
// every memory request gets an independent tensor and nothing is
// recycled (peak = Σ l_i^f + Σ l_i^b).
func BaselineConfig(d hw.DeviceSpec) Config {
	return Config{
		Device:     d,
		HostLink:   hw.PCIePinned,
		UseMemPool: true,
	}
}

// WithDefaults fills the capacity and iteration defaults.
func (c Config) WithDefaults() Config {
	cc := c
	if cc.PoolBytes == 0 {
		cc.PoolBytes = cc.Device.UsableBytes
	}
	if cc.HostBytes == 0 {
		cc.HostBytes = 256 * hw.GiB
	}
	if cc.Iterations == 0 {
		cc.Iterations = 1
	}
	if cc.HostLink.BytesPerSec == 0 {
		cc.HostLink = hw.PCIePinned
	}
	return cc
}
