package memmgr

// The adaptive planner: the paper's headline is *dynamic* GPU memory
// management, yet a one-shot plan computed before iteration 0 and
// replayed verbatim cannot represent workloads whose shape changes
// between iterations (bucketed sequence lengths, batch ramps — the
// setting where vDNN-style static offload schedules break down).
// Adaptive closes the loop: it observes each iteration's measured
// signals — stall time, pool fragmentation, tensor-cache hit rate,
// failed prefetches, OOM near-misses — and revises the
// offload/prefetch/recompute knobs for the next iteration boundary,
// widening the offload set under pressure and shrinking it when the
// cache absorbs the working set.
//
// Every input is a deterministic product of the virtual-time
// simulation, so two replays of the same dynamic trace make identical
// decisions — determinism is load-bearing for admission control.

import (
	"repro/internal/memplan"
	"repro/internal/recompute"
	"repro/internal/sim"
	"repro/internal/utp"
)

// Signals are the measured observations of one completed (or failed)
// iteration that the adaptive planner consumes.
type Signals struct {
	// Iteration indexes the observed iteration; Batch is its shape,
	// NextBatch the declared shape of the next iteration (0 when the
	// run ends) — the planner may anticipate the incoming shape but
	// only through measured per-byte behavior of the current one.
	Iteration int
	Batch     int
	NextBatch int

	// OOM reports that the iteration failed with an out-of-memory
	// error under the current plan.
	OOM bool

	IterTime  sim.Duration
	StallTime sim.Duration

	// PoolPeak is the pool high-water mark of this iteration;
	// PoolBytes the capacity.
	PoolPeak  int64
	PoolBytes int64
	// Fragmentation is the pool's 1 - largest/total free space after
	// the iteration.
	Fragmentation float64

	CacheHits        int64
	CacheMisses      int64
	FailedPrefetches int64
}

// HeadroomFrac returns the unused fraction of the pool at the
// iteration's peak.
func (s Signals) HeadroomFrac() float64 {
	if s.PoolBytes <= 0 {
		return 0
	}
	return 1 - float64(s.PoolPeak)/float64(s.PoolBytes)
}

// StallFrac returns stall time as a fraction of the iteration.
func (s Signals) StallFrac() float64 {
	if s.IterTime <= 0 {
		return 0
	}
	return float64(s.StallTime) / float64(s.IterTime)
}

// CacheHitRate returns hits/(hits+misses), or 1 when the cache saw no
// traffic (an idle cache is absorbing the working set trivially).
func (s Signals) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 1
	}
	return float64(s.CacheHits) / float64(total)
}

// PredictedNextPeak scales this iteration's measured peak linearly to
// the next iteration's batch — functional footprints grow with N while
// the persistent state does not, so this is a slight overestimate:
// exactly the right bias for a near-miss detector.
func (s Signals) PredictedNextPeak() int64 {
	if s.Batch <= 0 || s.NextBatch <= 0 {
		return s.PoolPeak
	}
	return int64(float64(s.PoolPeak) * float64(s.NextBatch) / float64(s.Batch))
}

// The decision thresholds. Escalation is eager (a single bad signal
// widens the plan: an OOM'd iteration is lost work), de-escalation is
// conservative (sustained calm plus hysteresis, so the plan does not
// oscillate around a boundary shape).
const (
	// adaptEscalateHeadroom: below this peak headroom the iteration
	// was an OOM near-miss.
	adaptEscalateHeadroom = 0.10
	// adaptEscalateStall: stalls above this fraction of the iteration
	// mean transfers are not hiding behind compute — eager offloads
	// must start earlier (a wider eager set) to overlap.
	adaptEscalateStall = 0.15
	// adaptNextPeakFrac: predicted next-shape peak above this fraction
	// of the pool escalates before the bigger shape arrives.
	adaptNextPeakFrac = 0.92
	// adaptCalmHeadroom / adaptCalmStall / adaptCalmHitRate: an
	// iteration is calm when headroom is ample, stalls negligible and
	// the cache (when present) absorbs the working set.
	adaptCalmHeadroom = 0.45
	adaptCalmStall    = 0.02
	adaptCalmHitRate  = 0.95
	// adaptCalmNextPeakFrac: de-escalation additionally requires the
	// predicted next-shape peak to leave the narrower plan real room.
	adaptCalmNextPeakFrac = 0.60
	// adaptCalmRun: consecutive calm iterations required before the
	// plan narrows; also the post-change cooldown.
	adaptCalmRun = 2
)

// Adaptive revises the offload/prefetch/recompute plan online. It owns
// a ladder of plan aggressiveness levels over the base configuration;
// Observe moves along the ladder from measured signals and Config
// materializes the current level's knobs.
type Adaptive struct {
	base  Config
	level int
	// moved is set once Observe has changed the plan; until then
	// Config returns the base verbatim, so enabling the planner never
	// silently rewrites a manager's own plan (e.g. vdnn's swap-all
	// offload set) before any signal has been observed.
	moved    bool
	calm     int
	cooldown int
	replans  int

	// planner/job attach this instance to a device-level planner
	// (Join): the Adaptive stops tuning knobs blindly and becomes a
	// client — it reports measured peaks upward and honors the
	// planner's Directive as a floor on its ladder level.
	planner *memplan.Planner
	job     string
}

// adaptMaxLevel indexes the widest plan on the ladder.
const adaptMaxLevel = 3

// NewAdaptive returns a planner starting at the level matching the
// base configuration's offload knobs.
func NewAdaptive(base Config) *Adaptive {
	a := &Adaptive{base: base}
	switch base.Offload {
	case utp.OffloadNone:
		a.level = 0
	case utp.OffloadConv:
		a.level = 1
	default: // conv+kept, swap-all
		a.level = 2
	}
	if a.level == 2 && base.Recompute != recompute.None {
		a.level = 3
	}
	return a
}

// Level returns the current aggressiveness level (0 = keep everything
// resident, adaptMaxLevel = widest offload set plus recomputation).
func (a *Adaptive) Level() int { return a.level }

// Replans counts the plan revisions Observe has made.
func (a *Adaptive) Replans() int { return a.replans }

// Config materializes the current level over the base configuration.
// Until the first plan revision it is the base itself.
func (a *Adaptive) Config() Config {
	if !a.moved {
		return a.base
	}
	return a.apply(a.level)
}

// apply materializes a ladder level's knobs over the base. Once the
// planner has revised the plan, the ladder owns the offload mode: a
// swap-all base (vdnn, tensorflow-swap) escalates into conv+kept —
// which is not a superset of swap-all's tensor set but strictly
// dominates it on peak memory (swap heuristics keep O(depth)
// join/fan-out tensors resident, §2.2; conv+kept offloads exactly
// those, and level 3's recomputation drops the cheap outputs swap-all
// would have moved), so escalation never trades away capacity.
func (a *Adaptive) apply(level int) Config {
	cfg := a.base
	switch level {
	case 0:
		cfg.Offload = utp.OffloadNone
		cfg.Prefetch = false
	case 1:
		cfg.Offload = utp.OffloadConv
		cfg.Prefetch = true
	default:
		cfg.Offload = utp.OffloadConvAndKept
		cfg.Prefetch = true
	}
	if level >= 3 && cfg.Recompute == recompute.None {
		cfg.Recompute = recompute.CostAware
	}
	return cfg
}

// Join attaches this per-job planner to a device-level planner as a
// client under the given job ID. From then on Observe (a) forwards the
// measured pool peak to the device planner, whose plan covers every
// co-tenant, and (b) treats the planner's Directive as a lower bound on
// the ladder level: device-wide pressure can force this job into wider
// offload or recomputation even when its own signals are calm, which is
// exactly the global offload ordering a per-job view cannot see.
func (a *Adaptive) Join(p *memplan.Planner, job string) {
	a.planner = p
	a.job = job
}

// directiveFloor is the device planner's minimum ladder level for this
// job (0 when unattached).
func (a *Adaptive) directiveFloor() int {
	if a.planner == nil {
		return 0
	}
	return a.planner.Directive(a.job)
}

// Observe feeds one iteration's signals into the planner and reports
// whether the plan for the next iteration changed (the caller must
// then Rebind with the revised Config).
func (a *Adaptive) Observe(s Signals) bool {
	if a.planner != nil {
		// Report the measured peak upward first so the directive below
		// reflects this iteration. Spill traffic is unknown here (-1
		// leaves the admission-time figure standing). The job is a
		// planner member whenever Join was called by the admission
		// path; a missing membership means the caller wired the planner
		// by hand, and the observation is simply dropped.
		_, _ = a.planner.Observe(a.job, s.PoolPeak, -1)
		if f := a.directiveFloor(); f > a.level {
			a.calm = 0
			a.cooldown = adaptCalmRun
			return a.moveTo(f)
		}
	}
	escalate := s.OOM ||
		s.HeadroomFrac() < adaptEscalateHeadroom ||
		s.StallFrac() > adaptEscalateStall ||
		s.FailedPrefetches > 0 ||
		(s.NextBatch > s.Batch &&
			float64(s.PredictedNextPeak()) > adaptNextPeakFrac*float64(s.PoolBytes))

	if escalate {
		a.calm = 0
		a.cooldown = adaptCalmRun
		return a.moveTo(a.wider())
	}

	calmNow := s.HeadroomFrac() > adaptCalmHeadroom &&
		s.StallFrac() < adaptCalmStall &&
		s.CacheHitRate() > adaptCalmHitRate &&
		float64(s.PredictedNextPeak()) < adaptCalmNextPeakFrac*float64(s.PoolBytes)
	if !calmNow {
		a.calm = 0
		if a.cooldown > 0 {
			a.cooldown--
		}
		return false
	}
	a.calm++
	if a.cooldown > 0 {
		a.cooldown--
		return false
	}
	if a.calm < adaptCalmRun {
		return false
	}
	a.calm = 0
	a.cooldown = adaptCalmRun
	target := a.narrower()
	if f := a.directiveFloor(); target < f {
		// Never narrow below the device planner's directive.
		target = f
	}
	return a.moveTo(target)
}

// planKnobs is the comparable slice of Config the ladder owns.
type planKnobs struct {
	offload   utp.Mode
	prefetch  bool
	recompute recompute.Strategy
}

func (a *Adaptive) knobs(level int) planKnobs {
	cfg := a.apply(level)
	return planKnobs{offload: cfg.Offload, prefetch: cfg.Prefetch, recompute: cfg.Recompute}
}

// wider returns the next level up whose knobs actually differ (levels
// can coincide, e.g. 2 and 3 when the base already recomputes).
func (a *Adaptive) wider() int {
	cur := a.knobs(a.level)
	for l := a.level + 1; l <= adaptMaxLevel; l++ {
		if a.knobs(l) != cur {
			return l
		}
	}
	return a.level
}

// narrower returns the next distinct level down.
func (a *Adaptive) narrower() int {
	cur := a.knobs(a.level)
	for l := a.level - 1; l >= 0; l-- {
		if a.knobs(l) != cur {
			return l
		}
	}
	return a.level
}

// moveTo switches levels, counting a replan only on a real change.
func (a *Adaptive) moveTo(level int) bool {
	if level == a.level {
		return false
	}
	a.level = level
	a.moved = true
	a.replans++
	return true
}
