package memmgr

import (
	"fmt"

	"repro/internal/gpumem"
	"repro/internal/hw"
	"repro/internal/liveness"
	"repro/internal/program"
	"repro/internal/recompute"
	"repro/internal/sim"
	"repro/internal/tcache"
	"repro/internal/trace"
	"repro/internal/utp"
)

// TState is the runtime's mutable view of one tensor.
type TState struct {
	GPU  gpumem.Allocation
	Host gpumem.Allocation
	// HostPool indexes the external pool holding the host copy.
	HostPool int

	OnGPU  bool
	OnHost bool

	// Inflight gates GPU reads on a pending H2D copy.
	Inflight      sim.Event
	InflightValid bool

	// OffPending marks an issued D2H whose GPU copy is reclaimable
	// once the event completes and the forward read horizon passes.
	OffEv      sim.Event
	OffPending bool
}

// Runtime is the state every subsystem operates over: the simulated
// timeline and engines, the memory spaces of the Unified Tensor Pool,
// the planner outputs, per-tensor placement, and the accounting that
// lands in Result. It corresponds to the paper's runtime context; the
// policy lives in the MemoryManager components, not here.
type Runtime struct {
	Cfg   Config
	P     *program.Program
	Live  *liveness.Result
	RPlan *recompute.Plan
	UPlan *utp.Plan

	TL      *sim.Timeline
	Compute *sim.Engine
	H2D     *sim.Engine
	D2H     *sim.Engine

	GPU gpumem.Allocator
	// The Unified Tensor Pool's external memory spaces, filled in
	// order (local CPU DRAM first, then peers/remote per Fig. 7).
	Hosts     []*gpumem.Pool
	HostLinks []hw.LinkSpec
	HostNames []string

	Cache *tcache.Cache

	TS    []TState
	Owner []int // tensor ID -> producing node ID (-1 for gradients)

	ResBytes int64
	ResCount int

	SegReplayed []bool
	Persistent  gpumem.Allocation
	CurStep     int

	// DropAt[si] lists dropped-tensor IDs whose forward read horizon
	// ends at step si; PendingOff tracks issued offloads awaiting
	// harvest. Both keep the per-step work proportional to actual
	// events rather than the tensor count (ResNet-2500 has ~60k
	// tensors).
	DropAt     [][]int
	PendingOff []int

	Res *Result
}

// NewRuntime builds the shared state for one run. cfg must already be
// normalized (WithDefaults applied).
func NewRuntime(p *program.Program, cfg Config) *Runtime {
	rt := &Runtime{
		TL:  sim.NewTimeline(),
		Res: &Result{},
	}
	rt.Compute = rt.TL.NewEngine("compute")
	rt.H2D = rt.TL.NewEngine("h2d")
	rt.D2H = rt.TL.NewEngine("d2h")
	if cfg.UseMemPool {
		rt.GPU = gpumem.NewPool(cfg.PoolBytes, cfg.Device.PoolOp)
	} else {
		rt.GPU = gpumem.NewNative(cfg.PoolBytes, cfg.Device.CudaMalloc, cfg.Device.CudaFree)
	}
	if cfg.SharedHost != nil {
		rt.Hosts = []*gpumem.Pool{cfg.SharedHost}
	} else {
		rt.Hosts = []*gpumem.Pool{gpumem.NewPool(cfg.HostBytes, cfg.Device.PoolOp)}
	}
	rt.HostLinks = []hw.LinkSpec{cfg.HostLink}
	rt.HostNames = []string{"cpu"}
	for _, ep := range cfg.ExternalPools {
		rt.Hosts = append(rt.Hosts, gpumem.NewPool(ep.Bytes, cfg.Device.PoolOp))
		rt.HostLinks = append(rt.HostLinks, ep.Link)
		rt.HostNames = append(rt.HostNames, ep.Name)
	}
	rt.bind(p, cfg)
	return rt
}

// bind derives the program- and knob-dependent state: the analyses and
// plans, the per-tensor placement table, and the planner-output
// indices. It is the shared tail of NewRuntime and Rebind.
func (rt *Runtime) bind(p *program.Program, cfg Config) {
	rt.Cfg = cfg
	rt.P = p
	rt.Live = liveness.Analyze(p)
	rt.TS = make([]TState, p.Reg.Len())
	rt.Owner = make([]int, p.Reg.Len())
	rt.RPlan = recompute.BuildPlan(p, cfg.Recompute)
	rt.UPlan = utp.BuildPlan(p, cfg.Offload, rt.RPlan)
	rt.SegReplayed = make([]bool, len(rt.RPlan.Segments))
	if cfg.TensorCache {
		rt.Cache = tcache.NewWithPolicy(cfg.CachePolicy)
	} else {
		rt.Cache = nil
	}
	for i := range rt.Owner {
		rt.Owner[i] = -1
	}
	for _, nd := range p.Net.Nodes {
		// With in-place sharing several nodes map to one tensor; the
		// true producer (first writer in creation order) owns it.
		if rt.Owner[p.Out[nd.ID].ID] == -1 {
			rt.Owner[p.Out[nd.ID].ID] = nd.ID
		}
	}
	rt.Res.Network, rt.Res.Batch = p.Net.Name, p.Net.Batch()
	rt.Res.BaselineBytes = p.BaselineBytes()
	rt.Res.LPeak, _ = p.LPeak()
	rt.Res.PersistentBytes = p.PersistentBytes

	// Size the per-iteration result buffers up front so steady-state
	// iterations append without growth reallocations: every iteration
	// records one StepProfile per step plus the SGD update, and (when
	// tracing) one compute span per step and at most one span per
	// transfer engine submission.
	if cap(rt.Res.Steps) < len(p.Steps)+1 {
		rt.Res.Steps = make([]StepProfile, 0, len(p.Steps)+1)
	}
	if cfg.CollectTrace && cap(rt.Res.Trace) < 3*len(p.Steps)+1 {
		rt.Res.Trace = make([]trace.Span, 0, 3*len(p.Steps)+1)
	}

	rt.PendingOff = nil
	rt.DropAt = make([][]int, len(p.Steps))
	for id := range rt.Owner {
		nd := rt.Owner[id]
		if nd < 0 || !rt.RPlan.Drop[nd] {
			continue
		}
		if last := rt.UPlan.LastFwdRead[id]; last >= 0 {
			rt.DropAt[last] = append(rt.DropAt[last], id)
		}
	}
}

// Rebind retargets the runtime at a new program (a new input shape)
// and possibly revised technique knobs at an iteration boundary, while
// keeping the timeline, engines and memory pools — so virtual time,
// pool fragmentation and transfer-engine history carry across the
// re-plan exactly as they would on a real device. Every functional
// tensor must already be freed (the iteration epilogue guarantees
// this); only the persistent allocation survives. Capacity fields of
// cfg (device, pool sizes) must not change across a Rebind.
func (rt *Runtime) Rebind(p *program.Program, cfg Config) error {
	if rt.ResBytes != 0 || rt.ResCount != 0 {
		return fmt.Errorf("memmgr: rebind with %d bytes / %d tensors still resident", rt.ResBytes, rt.ResCount)
	}
	// Pending offloads of the outgoing program must drain before the
	// tensor table is replaced: the host copies were freed with their
	// tensors, so an in-flight D2H targeting them is a bug upstream.
	for _, id := range rt.PendingOff {
		if rt.TS[id].OffPending {
			return fmt.Errorf("memmgr: rebind with offload of tensor %d still pending", id)
		}
	}
	rt.bind(p, cfg)
	return nil
}

// ResetIteration clears the per-iteration accounting so the reported
// numbers describe one steady-state iteration.
func (rt *Runtime) ResetIteration() {
	rt.Res.Steps = rt.Res.Steps[:0]
	rt.Res.OffloadBytes, rt.Res.PrefetchBytes = 0, 0
	rt.Res.FailedPrefetches = 0
	rt.Res.ExtraForwards = 0
	rt.Res.AllocCalls, rt.Res.FreeCalls, rt.Res.AllocTime = 0, 0, 0
	rt.Res.StallTime = 0
	rt.Res.PeakResident, rt.Res.PeakStep = 0, 0
	rt.Res.Trace = rt.Res.Trace[:0]
	for i := range rt.SegReplayed {
		rt.SegReplayed[i] = false
	}
	rt.PendingOff = rt.PendingOff[:0]
}

// HostAlloc reserves bytes in the first external pool with room,
// returning the allocation, the pool index and success.
func (rt *Runtime) HostAlloc(n int64) (gpumem.Allocation, int, bool) {
	for i, p := range rt.Hosts {
		if a, err := p.Alloc(n); err == nil {
			return a, i, true
		}
	}
	return gpumem.Allocation{}, 0, false
}

// Span records a timeline span when tracing is enabled.
func (rt *Runtime) Span(lane, name string, end sim.Event, dur sim.Duration) {
	if !rt.Cfg.CollectTrace {
		return
	}
	rt.Res.Trace = append(rt.Res.Trace, trace.Span{
		Lane: lane, Name: name,
		Start: end.At() - sim.Time(dur), End: end.At(),
	})
}

// ChargeAlloc advances virtual time by one allocator call and counts
// it.
func (rt *Runtime) ChargeAlloc() {
	rt.TL.Advance(rt.GPU.AllocCost())
	rt.Res.AllocCalls++
	rt.Res.AllocTime += rt.GPU.AllocCost()
}

// ChargeFree advances virtual time by one free call and counts it.
func (rt *Runtime) ChargeFree() {
	rt.TL.Advance(rt.GPU.FreeCost())
	rt.Res.FreeCalls++
	rt.Res.AllocTime += rt.GPU.FreeCost()
}
