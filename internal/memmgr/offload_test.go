package memmgr

// Regression tests for the Harvest(force) wait order: the forced wait
// must target the earliest-completing eligible transfer, never the
// first in PendingOff list order, and must not wait at all when a
// later-listed transfer is already harvestable.

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/program"
	"repro/internal/sim"
)

// harvestFixture builds a runtime with two tensors resident on the GPU,
// ready to have pending offloads attached. Returns the runtime, the
// offload engine and the two tensor IDs.
func harvestFixture(t *testing.T) (*Runtime, *StdOffload, int, int) {
	t.Helper()
	p := program.Build(nnet.AlexNet(8))
	cfg := Config{Device: hw.TeslaK40c, UseMemPool: true}.WithDefaults()
	rt := NewRuntime(p, cfg)
	resid := &StdResidency{rt: rt}
	off := NewStdOffload(rt, resid)
	resid.off = off

	a, b := 1, 2
	for _, id := range []int{a, b} {
		if err := resid.Alloc(p.Reg.Get(id)); err != nil {
			t.Fatalf("placing tensor %d: %v", id, err)
		}
		// Make both eligible: the forward read horizon has passed.
		rt.UPlan.LastFwdRead[id] = -1
	}
	rt.CurStep = 0
	return rt, off, a, b
}

// Two in-flight offloads completing out of list order: the forced
// harvest must wait only for the earlier-completing one and leave the
// later one pending.
func TestHarvestForceWaitsOnEarliestEvent(t *testing.T) {
	rt, off, a, b := harvestFixture(t)
	// List order: the slow transfer first, the fast one second —
	// exactly the shape that made the old implementation stall on the
	// slow event.
	slow := rt.D2H.Submit(rt.TL.Now(), 100*sim.Microsecond)
	fast := rt.H2D.Submit(rt.TL.Now(), 10*sim.Microsecond)
	rt.TS[a].OffEv, rt.TS[a].OffPending = slow, true
	rt.TS[b].OffEv, rt.TS[b].OffPending = fast, true
	rt.PendingOff = append(rt.PendingOff, a, b)

	before := rt.TL.Now()
	if !off.Harvest(true) {
		t.Fatal("forced harvest freed nothing")
	}
	wantStall := sim.Duration(fast.At() - before)
	if rt.Res.StallTime != wantStall {
		t.Errorf("stall = %v, want the earliest event's wait %v (list-order wait would be %v)",
			rt.Res.StallTime, wantStall, sim.Duration(slow.At()-before))
	}
	if rt.TS[b].OnGPU {
		t.Errorf("fast-completing tensor %d not freed", b)
	}
	if !rt.TS[a].OnGPU || !rt.TS[a].OffPending {
		t.Errorf("slow-completing tensor %d must remain pending", a)
	}
	if len(rt.PendingOff) != 1 || rt.PendingOff[0] != a {
		t.Errorf("pending list = %v, want [%d]", rt.PendingOff, a)
	}
}

// A transfer that already completed — like the instantly-complete
// host-backed input batch, appended after slower in-flight copies —
// must be harvested without any forced wait.
func TestHarvestForceSkipsWaitWhenOneAlreadyDone(t *testing.T) {
	rt, off, a, b := harvestFixture(t)
	slow := rt.D2H.Submit(rt.TL.Now(), 100*sim.Microsecond)
	rt.TS[a].OffEv, rt.TS[a].OffPending = slow, true
	// The zero event completed at time zero (the host-backed input
	// batch protocol in AfterKernel records exactly this).
	rt.TS[b].OffEv, rt.TS[b].OffPending = sim.Event{}, true
	rt.PendingOff = append(rt.PendingOff, a, b)

	nowBefore := rt.TL.Now()
	if !off.Harvest(true) {
		t.Fatal("forced harvest freed nothing")
	}
	if rt.Res.StallTime != 0 {
		t.Errorf("harvest stalled %v although tensor %d was already harvestable",
			rt.Res.StallTime, b)
	}
	// The only clock advance is the free call itself, never a wait on
	// the in-flight event.
	if want := nowBefore + sim.Time(rt.GPU.FreeCost()); rt.TL.Now() != want {
		t.Errorf("clock at %d after harvest, want %d (one free call, no wait)", rt.TL.Now(), want)
	}
	if rt.TS[b].OnGPU {
		t.Errorf("completed tensor %d not freed", b)
	}
	if !rt.TS[a].OnGPU || !rt.TS[a].OffPending {
		t.Errorf("in-flight tensor %d must remain pending", a)
	}
}

// A planned prefetch that fails for allocation pressure must be
// tolerated (fetch-on-demand covers it) and counted as a near-miss
// signal; it must not abort the step.
func TestPrefetchAllocFailureToleratedAndCounted(t *testing.T) {
	p := program.Build(nnet.AlexNet(8))
	cfg := Config{Device: hw.TeslaK40c, UseMemPool: true, Prefetch: true}.WithDefaults()
	rt := NewRuntime(p, cfg)
	resid := &StdResidency{rt: rt}
	off := NewStdOffload(rt, resid)
	resid.off = off

	// Occupy the whole GPU pool so the prefetch's allocation must fail,
	// with no cache and no pending offloads to reclaim from.
	if _, err := rt.GPU.Alloc(rt.GPU.Capacity()); err != nil {
		t.Fatal(err)
	}

	// Stage the tensor on the host and plan its prefetch at step 0.
	id := 1
	tn := p.Reg.Get(id)
	ha, pool, ok := rt.HostAlloc(tn.Bytes())
	if !ok {
		t.Fatal("host alloc failed")
	}
	rt.TS[id].Host, rt.TS[id].HostPool, rt.TS[id].OnHost = ha, pool, true
	rt.UPlan.PrefetchAt = map[int][]int{0: {id}}

	if err := off.Prefetch(0); err != nil {
		t.Fatalf("allocation-pressure prefetch failure must be tolerated, got %v", err)
	}
	if rt.Res.FailedPrefetches != 1 {
		t.Errorf("FailedPrefetches = %d, want 1", rt.Res.FailedPrefetches)
	}
	if rt.TS[id].OnGPU || rt.TS[id].InflightValid {
		t.Error("failed prefetch must leave the tensor host-only")
	}
}
