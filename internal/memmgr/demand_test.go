package memmgr

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/memplan"
	"repro/internal/nnet"
	"repro/internal/program"
	"repro/internal/tensor"
)

func TestTensorDemandsShareableShapesOnly(t *testing.T) {
	p := program.Build(nnet.AlexNet(8))
	ds := TensorDemands(p, 8)
	if len(ds) == 0 {
		t.Fatal("AlexNet program yields no shareable shapes")
	}
	if len(ds) > 8 {
		t.Fatalf("topK not honored: %d entries", len(ds))
	}
	seen := make(map[uint64]bool)
	for i, d := range ds {
		if d.Bytes <= 0 || d.Width != tensor.ElemSize {
			t.Fatalf("entry %d malformed: %+v", i, d)
		}
		if seen[d.Key] {
			t.Fatalf("duplicate shape key %#x", d.Key)
		}
		seen[d.Key] = true
		if i > 0 && ds[i-1].Bytes < d.Bytes {
			t.Fatalf("entries not sorted largest-first at %d", i)
		}
	}
	// Deterministic extraction: a rebuilt program yields identical
	// demands (the planner's replay identity starts here).
	ds2 := TensorDemands(program.Build(nnet.AlexNet(8)), 8)
	if len(ds2) != len(ds) {
		t.Fatalf("re-extraction changed length: %d vs %d", len(ds2), len(ds))
	}
	for i := range ds {
		if ds[i] != ds2[i] {
			t.Fatalf("entry %d differs across extractions: %+v vs %+v", i, ds[i], ds2[i])
		}
	}
	if got := TensorDemands(nil, 8); got != nil {
		t.Fatal("nil program should yield nil")
	}
	if got := TensorDemands(p, 0); got != nil {
		t.Fatal("topK=0 should yield nil")
	}
}

func TestDemandForClampsToFunctionalBudget(t *testing.T) {
	p := program.Build(nnet.AlexNet(8))
	est := Estimate{PeakBytes: 1 << 30, FloorBytes: 1 << 29}
	d := DemandFor("job-a", est, p, 16)
	if d.Job != "job-a" || d.PeakBytes != est.PeakBytes || d.FloorBytes != est.FloorBytes {
		t.Fatalf("scalar demand mismatch: %+v", d)
	}
	var tb int64
	for _, td := range d.Tensors {
		tb += td.Bytes
	}
	if tb > est.PeakBytes-est.FloorBytes {
		t.Fatalf("shareable bytes %d exceed the functional budget %d", tb, est.PeakBytes-est.FloorBytes)
	}
	// A floor above the peak clamps rather than yielding a negative
	// budget.
	d = DemandFor("job-b", Estimate{PeakBytes: 100, FloorBytes: 200}, p, 4)
	if d.FloorBytes != d.PeakBytes || len(d.Tensors) != 0 {
		t.Fatalf("floor>peak not clamped: %+v", d)
	}
}

func TestEstimateOfCarriesFloorAndSpill(t *testing.T) {
	r := &Result{PoolPeak: 1000, PersistentBytes: 300, OffloadBytes: 40, PrefetchBytes: 25}
	e := EstimateOf(r)
	if e.FloorBytes != 300 {
		t.Fatalf("floor %d, want 300", e.FloorBytes)
	}
	if e.SpillBytes != r.TotalTraffic() {
		t.Fatalf("spill %d, want %d", e.SpillBytes, r.TotalTraffic())
	}
	// Degenerate results cannot produce floor > peak.
	e = EstimateOf(&Result{PoolPeak: 100, PersistentBytes: 500})
	if e.FloorBytes != 100 {
		t.Fatalf("floor %d not clamped to peak", e.FloorBytes)
	}
}

func TestAdaptiveHonorsPlannerDirective(t *testing.T) {
	const gib = int64(1) << 30
	pl, err := memplan.New(12*gib, 16*gib, hw.PCIePinned)
	if err != nil {
		t.Fatal(err)
	}
	// Load the device until the plan is under pressure: five tenants
	// with 3 GiB floors force spills and drive headroom to zero.
	for _, j := range []string{"a", "b", "c", "d", "e"} {
		if _, err := pl.Admit(memplan.Demand{Job: j, PeakBytes: 6 * gib, FloorBytes: 3 * gib}); err != nil {
			t.Fatal(err)
		}
	}
	if pl.Directive("a") == memplan.DirectiveNone {
		t.Fatal("test premise: device should be under pressure")
	}

	a := NewAdaptive(Config{Device: hw.TeslaK40c})
	if a.Level() != 0 {
		t.Fatalf("base level %d, want 0", a.Level())
	}
	a.Join(pl, "a")
	// A perfectly calm iteration: without the planner this would never
	// escalate; the directive floor must force the level up anyway.
	calm := Signals{
		Iteration: 0, Batch: 8, NextBatch: 8,
		IterTime: 100, StallTime: 0,
		PoolPeak: 1 * gib, PoolBytes: 12 * gib,
	}
	if !a.Observe(calm) {
		t.Fatal("directive floor should have forced a replan")
	}
	if a.Level() < pl.Directive("a") {
		t.Fatalf("level %d below directive %d", a.Level(), pl.Directive("a"))
	}
	// Sustained calm must not narrow below the directive either.
	lvl := a.Level()
	for i := 1; i <= 8; i++ {
		s := calm
		s.Iteration = i
		a.Observe(s)
		if a.Level() < pl.Directive("a") {
			t.Fatalf("iteration %d narrowed to %d below directive %d", i, a.Level(), pl.Directive("a"))
		}
	}
	_ = lvl
	// Unattached planners keep the old behavior.
	b := NewAdaptive(Config{Device: hw.TeslaK40c})
	if b.Observe(calm) {
		t.Fatal("unattached adaptive escalated on a calm iteration")
	}
}
