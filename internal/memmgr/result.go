package memmgr

import (
	"repro/internal/layers"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StepProfile records the memory state after one step executed — the
// data behind the paper's Fig. 10 step-wise curves and Fig. 12
// workspace bars.
type StepProfile struct {
	Index int
	Label string
	Phase program.Phase

	// ResidentBytes is the functional-tensor footprint on the GPU
	// after the step's frees; LiveTensors the matching tensor count.
	ResidentBytes int64
	LiveTensors   int
	// PoolUsedBytes additionally includes persistent state.
	PoolUsedBytes int64

	// Workspace accounting for CONV steps: what the dynamic policy
	// assigned vs. what the fastest algorithm would have wanted.
	WorkspaceBytes    int64
	MaxSpeedWorkspace int64
	Algo              layers.AlgoKind

	// Time is the step's wall-clock (virtual) duration including
	// allocation costs and un-hidden transfer stalls.
	Time sim.Duration
}

// Result aggregates one run.
type Result struct {
	Network string
	Batch   int

	Steps []StepProfile

	// PeakResident / PeakStep: the network-wide peak_m over the
	// iteration and where it occurred.
	PeakResident int64
	PeakStep     int
	// PoolPeak includes persistent state (what must fit on the card).
	PoolPeak int64

	// BaselineBytes is Σ l_i^f + Σ l_i^b for reference; LPeak is
	// max(l_i), the layer-wise floor; PersistentBytes covers
	// parameters, their gradients and auxiliary state.
	BaselineBytes   int64
	LPeak           int64
	PersistentBytes int64

	// IterTime is the duration of one steady-state iteration;
	// Throughput the resulting images/second.
	IterTime   sim.Duration
	Throughput float64

	// Traffic per iteration.
	OffloadBytes  int64 // D2H: eager offloads + cache evictions
	PrefetchBytes int64 // H2D: prefetches + on-demand fetches
	CacheHits     int64
	CacheMisses   int64
	Evictions     int64
	// FailedPrefetches counts planned prefetches that could not
	// allocate under memory pressure and fell back to fetch-on-demand —
	// a near-miss signal the adaptive planner consumes.
	FailedPrefetches int64

	// ExtraForwards counts recomputation replays (Table 1).
	ExtraForwards int

	// Allocator activity.
	AllocCalls int64
	FreeCalls  int64
	AllocTime  sim.Duration

	// StallTime is host time spent waiting on transfers that could not
	// be hidden; engine busy times expose the achieved overlap.
	StallTime   sim.Duration
	ComputeBusy sim.Duration
	H2DBusy     sim.Duration
	D2HBusy     sim.Duration

	// Trace holds the timeline spans of the last iteration when
	// Config.CollectTrace is set.
	Trace []trace.Span
}

// TotalTraffic returns bytes moved across PCIe in one iteration (the
// paper's Table 3 metric).
func (r *Result) TotalTraffic() int64 { return r.OffloadBytes + r.PrefetchBytes }
