package memmgr

import (
	"repro/internal/hw"
	"repro/internal/recompute"
	"repro/internal/utp"
)

// mgr is the common MemoryManager shape: a name, a policy resolver and
// a component wiring.
type mgr struct {
	name       string
	normalize  func(Config) Config
	components func(*Runtime) Components
}

func (m *mgr) Name() string                      { return m.name }
func (m *mgr) Normalize(cfg Config) Config       { return m.normalize(cfg) }
func (m *mgr) Components(rt *Runtime) Components { return m.components(rt) }

// StdComponents wires the full standard machinery: residency with
// cache eviction, the UTP offload engine, the segment replayer and the
// dynamic workspace tuner. Which mechanisms actually engage is decided
// by the normalized Config flags, so this wiring serves every
// flag-driven ablation as well as the full SuperNeurons policy.
func StdComponents(rt *Runtime) Components {
	resid := &StdResidency{rt: rt}
	off := NewStdOffload(rt, resid)
	resid.off = off
	return Components{
		Residency: resid,
		Offload:   off,
		Replay:    NewStdReplayer(rt, resid, off),
		Tuner:     NewStdTuner(rt),
	}
}

// residentComponents wires a keep-everything policy: real residency
// tracking, but no transfer engine and no replayer. Used by the naive
// baseline and the Caffe/Torch models (whose static workspace caps
// still engage the tuner).
func residentComponents(rt *Runtime) Components {
	resid := &StdResidency{rt: rt, off: NullOffload{}}
	return Components{
		Residency: resid,
		Offload:   NullOffload{},
		Replay:    NullReplayer{},
		Tuner:     NewStdTuner(rt),
	}
}

// noRecomputeComponents wires an offload-capable policy without
// recomputation (vDNN, TensorFlow-style swapping).
func noRecomputeComponents(rt *Runtime) Components {
	resid := &StdResidency{rt: rt}
	off := NewStdOffload(rt, resid)
	resid.off = off
	return Components{
		Residency: resid,
		Offload:   off,
		Replay:    NullReplayer{},
		Tuner:     NewStdTuner(rt),
	}
}

// policyOf returns a normalize func that takes the donor constructor's
// configuration as the complete policy surface — the donor is the
// single source of truth for the technique flags — and carries over
// only the capacity and instrumentation fields of the incoming Config.
// Any technique flag the caller set (including ones added in the
// future) is therefore owned, and overridden, by the manager.
func policyOf(donor func(hw.DeviceSpec) Config) func(Config) Config {
	return func(cfg Config) Config {
		out := donor(cfg.Device)
		out.Manager = cfg.Manager
		out.PoolBytes = cfg.PoolBytes
		out.HostBytes = cfg.HostBytes
		out.ExternalPools = cfg.ExternalPools
		out.Iterations = cfg.Iterations
		out.BatchSchedule = cfg.BatchSchedule
		out.AdaptivePlan = cfg.AdaptivePlan
		out.CollectTrace = cfg.CollectTrace
		out.SGDUpdate = cfg.SGDUpdate
		return out
	}
}

// Donor configurations for the framework policy models (§2.2, §4.2 of
// the paper); SuperNeuronsConfig and BaselineConfig in config.go serve
// the same role for the paper's runtime and the naive baseline.

// VDNNConfig models Rhu et al.'s vDNN (§5): eager pinned offloading
// of every sizable single-consumer tensor with prefetching — but no
// recomputation, no tensor cache, and no dynamic workspace policy
// beyond a fixed cap.
func VDNNConfig(d hw.DeviceSpec) Config {
	return Config{
		Device: d, HostLink: hw.PCIePinned,
		UseMemPool: true, DynamicWorkspace: true,
		WorkspaceLimit: 512 * hw.MiB,
		Liveness:       true,
		Offload:        utp.OffloadSwapAll,
		Prefetch:       true,
	}
}

// CaffeConfig keeps the whole network resident and caps each
// convolution's workspace at its conservative 8 MiB default.
func CaffeConfig(d hw.DeviceSpec) Config {
	return Config{
		Device: d, HostLink: hw.PCIePinned,
		UseMemPool: true, DynamicWorkspace: true,
		WorkspaceLimit: 8 * hw.MiB,
	}
}

// TorchConfig is Caffe's policy plus in-place activations and a
// somewhat larger static workspace cap.
func TorchConfig(d hw.DeviceSpec) Config {
	c := CaffeConfig(d)
	c.WorkspaceLimit = 32 * hw.MiB
	c.InPlaceAct = true
	return c
}

// MXNetConfig runs liveness plus the per-segment speed-centric
// recomputation of Chen et al. with its 1 GiB per-layer workspace
// default — no swapping, so checkpoint outputs accumulate on GPU.
func MXNetConfig(d hw.DeviceSpec) Config {
	return Config{
		Device: d, HostLink: hw.PCIePinned,
		UseMemPool: true, DynamicWorkspace: true,
		WorkspaceLimit: 1 * hw.GiB,
		Liveness:       true,
		Recompute:      recompute.SpeedCentric,
	}
}

// TensorFlowConfig is TensorFlow's plain execution: DAG liveness over
// a pageable host link, no swapping, no recomputation.
func TensorFlowConfig(d hw.DeviceSpec) Config {
	return Config{
		Device: d, HostLink: hw.PCIePageable,
		UseMemPool: true, DynamicWorkspace: true,
		Liveness: true,
	}
}

// TensorFlowSwapConfig is TensorFlow's memory optimizer: when the
// plain execution does not fit, pageable on-demand swap-out/swap-in
// pairs for single-consumer tensors (no pinned staging, no prefetch
// overlap — the ≥50% communication-speed loss §2.2 describes).
func TensorFlowSwapConfig(d hw.DeviceSpec) Config {
	c := TensorFlowConfig(d)
	c.Offload = utp.OffloadSwapAll
	return c
}

// Custom is the flag-driven manager: it interprets the Config
// technique flags literally, which is how the paper's ablation studies
// toggle individual mechanisms. It is the default for Config.Manager
// == "".
var Custom MemoryManager = &mgr{
	name:       "custom",
	normalize:  func(cfg Config) Config { return cfg },
	components: StdComponents,
}

func init() {
	Register(Custom)
	// The paper's full runtime.
	Register(&mgr{name: "superneurons", components: StdComponents,
		normalize: policyOf(SuperNeuronsConfig)})
	// The offload-everything baseline.
	Register(&mgr{name: "vdnn", components: noRecomputeComponents,
		normalize: policyOf(VDNNConfig)})
	// The naive keep-everything baseline (peak = Σ l_i^f + Σ l_i^b).
	Register(&mgr{name: "naive", components: residentComponents,
		normalize: policyOf(BaselineConfig)})
	// The framework comparison models.
	Register(&mgr{name: "caffe", components: residentComponents,
		normalize: policyOf(CaffeConfig)})
	Register(&mgr{name: "torch", components: residentComponents,
		normalize: policyOf(TorchConfig)})
	Register(&mgr{name: "mxnet", components: StdComponents,
		normalize: policyOf(MXNetConfig)})
	Register(&mgr{name: "tensorflow", components: noRecomputeComponents,
		normalize: policyOf(TensorFlowConfig)})
	Register(&mgr{name: "tensorflow-swap", components: noRecomputeComponents,
		normalize: policyOf(TensorFlowSwapConfig)})
}
