package memmgr

import (
	"errors"
	"fmt"

	"repro/internal/gpumem"
	"repro/internal/layers"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/utp"
)

// StdOffload is the Unified Tensor Pool's transfer engine: eager D2H
// offloads of checkpoint outputs, asynchronous harvest of completed
// transfers, planned prefetches and on-demand fetches, filling the
// external pools in spill order (local CPU DRAM first, then
// peers/remote per Fig. 7).
type StdOffload struct {
	rt    *Runtime
	resid Residency
}

// NewStdOffload wires the standard offload engine over the runtime and
// its residency manager.
func NewStdOffload(rt *Runtime, resid Residency) *StdOffload {
	return &StdOffload{rt: rt, resid: resid}
}

// Prefetch triggers the planned prefetches so the H2D copy overlaps
// this step's computation (§3.3.1). Only allocation-pressure failures
// are tolerated — fetch-on-demand covers them at the tensor's use, and
// they are counted in Result.FailedPrefetches as a memory-pressure
// signal for the adaptive planner. Any other failure means the host
// copy's state is inconsistent and must surface.
func (o *StdOffload) Prefetch(si int) error {
	rt := o.rt
	if !rt.Cfg.Prefetch {
		return nil
	}
	for _, tid := range rt.UPlan.PrefetchAt[si] {
		t := rt.P.Reg.Get(tid)
		s := &rt.TS[tid]
		if s.OnHost && !s.OnGPU && !s.InflightValid {
			if err := o.Fetch(t); err != nil {
				if errors.Is(err, gpumem.ErrOutOfMemory) {
					rt.Res.FailedPrefetches++
					continue
				}
				return fmt.Errorf("prefetch of %s at step %d: %w", t, si, err)
			}
		}
	}
	return nil
}

// AfterKernel runs the post-kernel offload protocol: checkpoint
// outputs leave for pinned host memory as soon as they are produced
// (eager mode), and the host-backed input batch's GPU copy becomes
// reclaimable at zero D2H cost.
func (o *StdOffload) AfterKernel(st *program.Step) {
	rt := o.rt
	// Eager offload: with the Tensor Cache the transfer only happens
	// under memory pressure (eviction).
	if st.Phase == program.Forward && rt.Cache == nil && rt.Cfg.Offload != utp.OffloadNone {
		out := rt.P.Out[st.Node.ID]
		if rt.UPlan.OffloadTensor[out.ID] && rt.TS[out.ID].OnGPU {
			o.IssueOffload(out)
		}
	}
	// The input batch is host-backed by definition — it was staged in
	// CPU RAM by the data pipeline — so its GPU copy is reclaimable
	// after the forward pass at zero D2H cost. With the Tensor Cache
	// the copy stays cached until real memory pressure evicts it.
	if st.Phase == program.Forward && st.Node.L.Type == layers.Data && rt.Cfg.Liveness && rt.Cache == nil {
		out := rt.P.Out[st.Node.ID]
		s := &rt.TS[out.ID]
		if s.OnGPU && !s.OnHost {
			// The input batch lives in local CPU DRAM (pool 0).
			if ha, err := rt.Hosts[0].Alloc(out.Bytes()); err == nil {
				s.Host = ha
				s.HostPool = 0
				s.OnHost = true
				s.OffPending = true // completes instantly: data was never GPU-only
				rt.PendingOff = append(rt.PendingOff, out.ID)
			}
		}
	}
}

// IssueOffload starts the eager D2H copy of a freshly produced
// checkpoint tensor; the GPU copy is reclaimed by Harvest once the
// transfer completes and the forward no longer reads it.
func (o *StdOffload) IssueOffload(t *tensor.Tensor) {
	rt := o.rt
	s := &rt.TS[t.ID]
	if s.OnHost || s.OffPending {
		return
	}
	ha, pool, ok := rt.HostAlloc(t.Bytes())
	if !ok {
		return
	}
	s.Host = ha
	s.HostPool = pool
	s.OnHost = true
	dur := rt.HostLinks[pool].TransferTime(t.Bytes())
	s.OffEv = rt.D2H.Submit(rt.TL.Now(), dur)
	s.OffPending = true
	rt.Span("d2h", "offload "+t.Name, s.OffEv, dur)
	rt.PendingOff = append(rt.PendingOff, t.ID)
	rt.Res.OffloadBytes += t.Bytes()
}

// Harvest frees GPU copies whose D2H transfer completed and whose
// forward reads are done (the executor is past the tensor's last
// forward reader). With force, when no transfer has completed yet it
// waits for the pending one that completes earliest — not the first in
// list order, which may finish long after a later-issued copy (e.g.
// the instantly-complete host-backed input batch) and would overstate
// StallTime (the background checker thread's job in the real runtime).
func (o *StdOffload) Harvest(force bool) bool {
	freed, earliest, ok := o.sweep()
	if freed || !force || !ok {
		return freed
	}
	rt := o.rt
	rt.Res.StallTime += sim.Duration(earliest.At() - rt.TL.Now())
	rt.TL.Wait(earliest)
	freed, _, _ = o.sweep()
	return freed
}

// sweep frees every harvestable completed offload, keeping the rest
// pending. It returns whether anything was freed, plus the
// earliest-completing event among the eligible still-pending transfers
// (ok reports whether one exists).
func (o *StdOffload) sweep() (freed bool, earliest sim.Event, ok bool) {
	rt := o.rt
	remaining := rt.PendingOff[:0]
	for _, id := range rt.PendingOff {
		s := &rt.TS[id]
		if !s.OffPending || !s.OnGPU {
			s.OffPending = false
			continue
		}
		t := rt.P.Reg.Get(id)
		if t.Locked || rt.CurStep <= rt.UPlan.LastFwdRead[id] {
			remaining = append(remaining, id)
			continue
		}
		if !s.OffEv.DoneBy(rt.TL.Now()) {
			if !ok || s.OffEv.At() < earliest.At() {
				earliest, ok = s.OffEv, true
			}
			remaining = append(remaining, id)
			continue
		}
		s.OffPending = false
		o.resid.FreeGPU(t)
		freed = true
	}
	rt.PendingOff = remaining
	return freed, earliest, ok
}

// Fetch brings an offloaded tensor back to the GPU; consuming kernels
// gate on the recorded in-flight event.
func (o *StdOffload) Fetch(t *tensor.Tensor) error {
	rt := o.rt
	s := &rt.TS[t.ID]
	if err := o.resid.Alloc(t); err != nil {
		return err
	}
	dur := rt.HostLinks[s.HostPool].TransferTime(t.Bytes())
	s.Inflight = rt.H2D.Submit(rt.TL.Now(), dur)
	s.InflightValid = true
	rt.Span("h2d", "fetch "+t.Name, s.Inflight, dur)
	rt.Res.PrefetchBytes += t.Bytes()
	if rt.Cache != nil {
		rt.Cache.In(t)
	}
	return nil
}

// DropAfterFwd frees forward outputs scheduled for recomputation once
// their forward read horizon passes.
func (o *StdOffload) DropAfterFwd(si int) {
	rt := o.rt
	for _, id := range rt.DropAt[si] {
		if rt.TS[id].OnGPU {
			o.resid.FreeGPU(rt.P.Reg.Get(id))
		}
	}
}

// NullOffload is the keep-everything policy's transfer engine: it
// never moves a byte. Policies wiring it must not enable offloading,
// prefetching or recomputation drops.
type NullOffload struct{}

// Prefetch is a no-op.
func (NullOffload) Prefetch(int) error { return nil }

// Harvest reports that nothing could be freed.
func (NullOffload) Harvest(bool) bool { return false }

// Fetch fails: nothing is ever on the host under this policy.
func (NullOffload) Fetch(t *tensor.Tensor) error {
	return fmt.Errorf("memmgr: null offload engine cannot fetch %s", t)
}

// AfterKernel is a no-op.
func (NullOffload) AfterKernel(*program.Step) {}

// DropAfterFwd is a no-op.
func (NullOffload) DropAfterFwd(int) {}
