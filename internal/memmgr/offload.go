package memmgr

import (
	"fmt"

	"repro/internal/layers"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/utp"
)

// StdOffload is the Unified Tensor Pool's transfer engine: eager D2H
// offloads of checkpoint outputs, asynchronous harvest of completed
// transfers, planned prefetches and on-demand fetches, filling the
// external pools in spill order (local CPU DRAM first, then
// peers/remote per Fig. 7).
type StdOffload struct {
	rt    *Runtime
	resid Residency
}

// NewStdOffload wires the standard offload engine over the runtime and
// its residency manager.
func NewStdOffload(rt *Runtime, resid Residency) *StdOffload {
	return &StdOffload{rt: rt, resid: resid}
}

// Prefetch triggers the planned prefetches so the H2D copy overlaps
// this step's computation (§3.3.1).
func (o *StdOffload) Prefetch(si int) {
	rt := o.rt
	if !rt.Cfg.Prefetch {
		return
	}
	for _, tid := range rt.UPlan.PrefetchAt[si] {
		t := rt.P.Reg.Get(tid)
		s := &rt.TS[tid]
		if s.OnHost && !s.OnGPU && !s.InflightValid {
			// Prefetch failures are tolerated: the tensor will be
			// fetched on demand at its use.
			_ = o.Fetch(t)
		}
	}
}

// AfterKernel runs the post-kernel offload protocol: checkpoint
// outputs leave for pinned host memory as soon as they are produced
// (eager mode), and the host-backed input batch's GPU copy becomes
// reclaimable at zero D2H cost.
func (o *StdOffload) AfterKernel(st *program.Step) {
	rt := o.rt
	// Eager offload: with the Tensor Cache the transfer only happens
	// under memory pressure (eviction).
	if st.Phase == program.Forward && rt.Cache == nil && rt.Cfg.Offload != utp.OffloadNone {
		out := rt.P.Out[st.Node.ID]
		if rt.UPlan.OffloadTensor[out.ID] && rt.TS[out.ID].OnGPU {
			o.IssueOffload(out)
		}
	}
	// The input batch is host-backed by definition — it was staged in
	// CPU RAM by the data pipeline — so its GPU copy is reclaimable
	// after the forward pass at zero D2H cost. With the Tensor Cache
	// the copy stays cached until real memory pressure evicts it.
	if st.Phase == program.Forward && st.Node.L.Type == layers.Data && rt.Cfg.Liveness && rt.Cache == nil {
		out := rt.P.Out[st.Node.ID]
		s := &rt.TS[out.ID]
		if s.OnGPU && !s.OnHost {
			// The input batch lives in local CPU DRAM (pool 0).
			if ha, err := rt.Hosts[0].Alloc(out.Bytes()); err == nil {
				s.Host = ha
				s.HostPool = 0
				s.OnHost = true
				s.OffPending = true // completes instantly: data was never GPU-only
				rt.PendingOff = append(rt.PendingOff, out.ID)
			}
		}
	}
}

// IssueOffload starts the eager D2H copy of a freshly produced
// checkpoint tensor; the GPU copy is reclaimed by Harvest once the
// transfer completes and the forward no longer reads it.
func (o *StdOffload) IssueOffload(t *tensor.Tensor) {
	rt := o.rt
	s := &rt.TS[t.ID]
	if s.OnHost || s.OffPending {
		return
	}
	ha, pool, ok := rt.HostAlloc(t.Bytes())
	if !ok {
		return
	}
	s.Host = ha
	s.HostPool = pool
	s.OnHost = true
	dur := rt.HostLinks[pool].TransferTime(t.Bytes())
	s.OffEv = rt.D2H.Submit(rt.TL.Now(), dur)
	s.OffPending = true
	rt.Span("d2h", "offload "+t.Name, s.OffEv, dur)
	rt.PendingOff = append(rt.PendingOff, t.ID)
	rt.Res.OffloadBytes += t.Bytes()
}

// Harvest frees GPU copies whose D2H transfer completed and whose
// forward reads are done (the executor is past the tensor's last
// forward reader). With force, it waits for a pending transfer if none
// has completed yet (the background checker thread's job in the real
// runtime).
func (o *StdOffload) Harvest(force bool) bool {
	rt := o.rt
	freed := false
	waited := false
	remaining := rt.PendingOff[:0]
	for _, id := range rt.PendingOff {
		s := &rt.TS[id]
		if !s.OffPending || !s.OnGPU {
			s.OffPending = false
			continue
		}
		t := rt.P.Reg.Get(id)
		if t.Locked || rt.CurStep <= rt.UPlan.LastFwdRead[id] {
			remaining = append(remaining, id)
			continue
		}
		if !s.OffEv.DoneBy(rt.TL.Now()) {
			if !force || waited {
				remaining = append(remaining, id)
				continue
			}
			rt.Res.StallTime += sim.Duration(s.OffEv.At() - rt.TL.Now())
			rt.TL.Wait(s.OffEv)
			waited = true
		}
		s.OffPending = false
		o.resid.FreeGPU(t)
		freed = true
	}
	rt.PendingOff = remaining
	return freed
}

// Fetch brings an offloaded tensor back to the GPU; consuming kernels
// gate on the recorded in-flight event.
func (o *StdOffload) Fetch(t *tensor.Tensor) error {
	rt := o.rt
	s := &rt.TS[t.ID]
	if err := o.resid.Alloc(t); err != nil {
		return err
	}
	dur := rt.HostLinks[s.HostPool].TransferTime(t.Bytes())
	s.Inflight = rt.H2D.Submit(rt.TL.Now(), dur)
	s.InflightValid = true
	rt.Span("h2d", "fetch "+t.Name, s.Inflight, dur)
	rt.Res.PrefetchBytes += t.Bytes()
	if rt.Cache != nil {
		rt.Cache.In(t)
	}
	return nil
}

// DropAfterFwd frees forward outputs scheduled for recomputation once
// their forward read horizon passes.
func (o *StdOffload) DropAfterFwd(si int) {
	rt := o.rt
	for _, id := range rt.DropAt[si] {
		if rt.TS[id].OnGPU {
			o.resid.FreeGPU(rt.P.Reg.Get(id))
		}
	}
}

// NullOffload is the keep-everything policy's transfer engine: it
// never moves a byte. Policies wiring it must not enable offloading,
// prefetching or recomputation drops.
type NullOffload struct{}

// Prefetch is a no-op.
func (NullOffload) Prefetch(int) {}

// Harvest reports that nothing could be freed.
func (NullOffload) Harvest(bool) bool { return false }

// Fetch fails: nothing is ever on the host under this policy.
func (NullOffload) Fetch(t *tensor.Tensor) error {
	return fmt.Errorf("memmgr: null offload engine cannot fetch %s", t)
}

// AfterKernel is a no-op.
func (NullOffload) AfterKernel(*program.Step) {}

// DropAfterFwd is a no-op.
func (NullOffload) DropAfterFwd(int) {}
