package tcache

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func newTensors(n int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = &tensor.Tensor{ID: i, Shape: tensor.Shape{N: 1, C: 1, H: 1, W: 256}} // 1 KiB each
	}
	return out
}

func TestCheckHitMiss(t *testing.T) {
	c := New()
	ts := newTensors(2)
	if c.Check(ts[0]) {
		t.Fatal("empty cache must miss")
	}
	c.In(ts[0])
	if !c.Check(ts[0]) {
		t.Fatal("inserted tensor must hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestLRUOrderAndTouch(t *testing.T) {
	c := New()
	ts := newTensors(3)
	c.In(ts[0])
	c.In(ts[1])
	c.In(ts[2]) // MRU..LRU = 2,1,0
	got := c.Tensors()
	if got[0] != ts[2] || got[2] != ts[0] {
		t.Fatal("insertion order broken")
	}
	c.Check(ts[0]) // touch 0 -> MRU
	got = c.Tensors()
	if got[0] != ts[0] || got[2] != ts[1] {
		t.Fatal("touch must move to MRU")
	}
}

func TestVictimsAreLRUFirst(t *testing.T) {
	c := New()
	ts := newTensors(3)
	for _, x := range ts {
		c.In(x)
	}
	v, ok := c.Victims(1024) // one tensor's worth
	if !ok || len(v) != 1 || v[0] != ts[0] {
		t.Fatalf("victims = %v, want oldest tensor only", v)
	}
	v, ok = c.Victims(2048)
	if !ok || len(v) != 2 || v[0] != ts[0] || v[1] != ts[1] {
		t.Fatal("two-victim selection wrong")
	}
}

func TestLockedTensorsNotEvicted(t *testing.T) {
	c := New()
	ts := newTensors(2)
	c.In(ts[0])
	c.In(ts[1])
	ts[0].Locked = true
	v, ok := c.Victims(1024)
	if !ok || len(v) != 1 || v[0] != ts[1] {
		t.Fatal("locked LRU tensor must be skipped")
	}
	ts[1].Locked = true
	if _, ok := c.Victims(1024); ok {
		t.Fatal("all-locked cache must report insufficient space")
	}
}

func TestInsufficientVictims(t *testing.T) {
	c := New()
	c.In(newTensors(1)[0])
	if _, ok := c.Victims(10 * 1024); ok {
		t.Fatal("cache smaller than need must fail")
	}
}

func TestEvictedAndRemove(t *testing.T) {
	c := New()
	ts := newTensors(2)
	c.In(ts[0])
	c.In(ts[1])
	c.Evicted(ts[0])
	if c.Contains(ts[0]) || c.Len() != 1 {
		t.Fatal("evicted tensor still cached")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.EvictedBytes != 1024 {
		t.Errorf("eviction stats = %+v", st)
	}
	c.Remove(ts[1])
	if c.Len() != 0 {
		t.Fatal("remove failed")
	}
	if c.Stats().Evictions != 1 {
		t.Error("Remove must not count as eviction")
	}
	c.Remove(ts[1]) // idempotent
}

func TestInUnlocksAndDeduplicates(t *testing.T) {
	c := New()
	ts := newTensors(1)
	ts[0].Locked = true
	c.In(ts[0])
	if ts[0].Locked {
		t.Error("In must unlock (Alg. 2 line 2)")
	}
	c.In(ts[0]) // re-insert must not duplicate
	if c.Len() != 1 {
		t.Error("duplicate insertion")
	}
}

func TestFIFOIgnoresReuse(t *testing.T) {
	c := NewWithPolicy(FIFO)
	ts := newTensors(3)
	for _, x := range ts {
		c.In(x)
	}
	if !c.Check(ts[0]) {
		t.Fatal("FIFO hit lookup broken")
	}
	// Despite the hit, ts[0] remains the first-in victim.
	v, ok := c.Victims(1024)
	if !ok || v[0] != ts[0] {
		t.Fatalf("FIFO victim = %v, want first inserted", v)
	}
	if c.Policy() != FIFO {
		t.Error("policy accessor broken")
	}
}

func TestMRUEvictsFreshest(t *testing.T) {
	c := NewWithPolicy(MRU)
	ts := newTensors(3)
	for _, x := range ts {
		c.In(x)
	}
	c.Check(ts[1]) // ts[1] becomes MRU
	v, ok := c.Victims(1024)
	if !ok || v[0] != ts[1] {
		t.Fatalf("MRU victim = %v, want most recently used", v)
	}
	ts[1].Locked = true
	v, ok = c.Victims(1024)
	if !ok || v[0] != ts[2] {
		t.Fatalf("MRU locked skip broken: %v", v)
	}
	ts[1].Locked = false
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || MRU.String() != "mru" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must print")
	}
}

// Property: after any operation sequence, Victims(need) returns
// unlocked tensors in strict LRU order with enough combined bytes.
func TestVictimOrderProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New()
		ts := newTensors(8)
		for _, op := range ops {
			x := ts[int(op)%8]
			switch (op / 8) % 3 {
			case 0:
				c.In(x)
			case 1:
				c.Check(x)
			case 2:
				c.Remove(x)
			}
		}
		v, ok := c.Victims(2048)
		if !ok {
			return true
		}
		// Victims must appear in reverse (LRU-first) order of the list.
		all := c.Tensors()
		idx := make(map[int]int)
		for i, x := range all {
			idx[x.ID] = i
		}
		last := len(all)
		for _, x := range v {
			if idx[x.ID] >= last {
				return false
			}
			last = idx[x.ID]
		}
		var sum int64
		for _, x := range v {
			sum += x.Bytes()
		}
		return sum >= 2048
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
