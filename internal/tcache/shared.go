package tcache

// Cross-job tensor reservation sharing. The per-job Cache above keeps
// one job's tensors warm; Shared is the device-level complement: a
// registry of reservations keyed by shape+dtype, so identical
// workspace and activation shapes from different co-tenant jobs reuse
// ONE slab instead of each reserving its own. The insight is the same
// one TENSILE exploits across workloads: a functional tensor's slab is
// content-free between uses — on a device whose compute engine runs
// one co-tenant iteration at a time, the running job is the only one
// whose functional shapes are materialized, so a shape both tenants
// declare never needs two reservations.
//
// Shared is pure bookkeeping, like Cache: the device planner
// (internal/memplan) consults it for reservation accounting; no bytes
// move here. All state is a deterministic function of the acquire/
// release history, and every aggregate is maintained incrementally so
// queries are O(1).

import "fmt"

// ShapeKey identifies a tensor shape + element byte width. Two tensors
// with equal keys are interchangeable as reservations: same dims, same
// dtype width, hence the same footprint. The key is FNV-1a over the
// dimensions and width, so it is stable across processes and replays.
func ShapeKey(n, c, h, w, width int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	k := uint64(offset64)
	for _, v := range [...]int{n, c, h, w, width} {
		k ^= uint64(uint32(v))
		k *= prime64
	}
	return k
}

// SharedStats counts registry activity.
type SharedStats struct {
	// Reservations counts slabs created (first acquire of a key);
	// Reuses counts acquires that found an existing slab.
	Reservations int64
	Reuses       int64
}

// slab is one shared reservation: a shape's footprint and how many
// tenants currently hold it. Same key implies same bytes (the key
// covers dims and width), so the footprint never changes over a slab's
// lifetime.
type slab struct {
	bytes int64
	refs  int
}

// Shared is the cross-job reservation registry for one device.
type Shared struct {
	slabs map[uint64]slab
	stats SharedStats

	// reserved is Σ slab bytes (each shape charged once); saved is
	// Σ (refs-1)×bytes — the capacity co-tenancy did not have to
	// reserve twice.
	reserved int64
	saved    int64
}

// NewShared returns an empty registry.
func NewShared() *Shared {
	return &Shared{slabs: make(map[uint64]slab)}
}

// Acquire records one tenant's reservation of the keyed shape and
// reports whether an existing slab was reused (true) or a new one
// created (false). bytes must match the key's footprint; a mismatch is
// an error because it means two different shapes collided on a key or
// a caller derived bytes inconsistently.
func (s *Shared) Acquire(key uint64, bytes int64) (bool, error) {
	if bytes <= 0 {
		return false, fmt.Errorf("tcache: shared acquire of %d bytes", bytes)
	}
	if sl, ok := s.slabs[key]; ok {
		if sl.bytes != bytes {
			return false, fmt.Errorf("tcache: shared key %#x acquired at %d bytes, held at %d", key, bytes, sl.bytes)
		}
		sl.refs++
		s.slabs[key] = sl
		s.stats.Reuses++
		s.saved += bytes
		return true, nil
	}
	s.slabs[key] = slab{bytes: bytes, refs: 1}
	s.stats.Reservations++
	s.reserved += bytes
	return false, nil
}

// Release drops one tenant's reservation; the slab disappears with its
// last holder. Releasing an unheld key is an error — it means acquire/
// release bookkeeping diverged upstream.
func (s *Shared) Release(key uint64) error {
	sl, ok := s.slabs[key]
	if !ok {
		return fmt.Errorf("tcache: shared release of unheld key %#x", key)
	}
	sl.refs--
	if sl.refs == 0 {
		s.reserved -= sl.bytes
		delete(s.slabs, key)
		return nil
	}
	s.saved -= sl.bytes
	s.slabs[key] = sl
	return nil
}

// Refs returns the number of tenants holding the key (0 when unheld).
func (s *Shared) Refs(key uint64) int { return s.slabs[key].refs }

// Len returns the number of live slabs.
func (s *Shared) Len() int { return len(s.slabs) }

// ReservedBytes is the capacity the shared slabs occupy: each shape
// charged once, regardless of how many tenants hold it.
func (s *Shared) ReservedBytes() int64 { return s.reserved }

// SavedBytes is the capacity sharing avoided: Σ (holders-1) × bytes
// over all slabs. With a single tenant it is zero.
func (s *Shared) SavedBytes() int64 { return s.saved }

// Stats returns a copy of the activity counters.
func (s *Shared) Stats() SharedStats { return s.stats }
