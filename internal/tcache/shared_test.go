package tcache

import "testing"

func TestShapeKeyDistinguishesShapeAndWidth(t *testing.T) {
	a := ShapeKey(32, 3, 224, 224, 4)
	if b := ShapeKey(32, 3, 224, 224, 4); b != a {
		t.Fatalf("same shape hashed differently: %#x vs %#x", a, b)
	}
	for _, other := range []uint64{
		ShapeKey(64, 3, 224, 224, 4),
		ShapeKey(32, 4, 224, 224, 4),
		ShapeKey(32, 3, 225, 224, 4),
		ShapeKey(32, 3, 224, 225, 4),
		ShapeKey(32, 3, 224, 224, 2),
	} {
		if other == a {
			t.Fatalf("distinct shape collided with %#x", a)
		}
	}
}

func TestSharedAcquireReuseRelease(t *testing.T) {
	s := NewShared()
	k := ShapeKey(32, 64, 56, 56, 4)
	const bytes = int64(32 * 64 * 56 * 56 * 4)

	reused, err := s.Acquire(k, bytes)
	if err != nil || reused {
		t.Fatalf("first acquire: reused=%v err=%v", reused, err)
	}
	if got := s.ReservedBytes(); got != bytes {
		t.Fatalf("reserved %d, want %d", got, bytes)
	}
	if got := s.SavedBytes(); got != 0 {
		t.Fatalf("saved %d after single acquire, want 0", got)
	}

	reused, err = s.Acquire(k, bytes)
	if err != nil || !reused {
		t.Fatalf("second acquire: reused=%v err=%v", reused, err)
	}
	if got := s.ReservedBytes(); got != bytes {
		t.Fatalf("reserved %d after reuse, want %d (charged once)", got, bytes)
	}
	if got := s.SavedBytes(); got != bytes {
		t.Fatalf("saved %d, want %d", got, bytes)
	}
	if got := s.Refs(k); got != 2 {
		t.Fatalf("refs %d, want 2", got)
	}

	if err := s.Release(k); err != nil {
		t.Fatal(err)
	}
	if got := s.SavedBytes(); got != 0 {
		t.Fatalf("saved %d after release, want 0", got)
	}
	if err := s.Release(k); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.ReservedBytes() != 0 {
		t.Fatalf("registry not empty after last release: len=%d reserved=%d", s.Len(), s.ReservedBytes())
	}
	st := s.Stats()
	if st.Reservations != 1 || st.Reuses != 1 {
		t.Fatalf("stats %+v, want 1 reservation / 1 reuse", st)
	}
}

func TestSharedErrors(t *testing.T) {
	s := NewShared()
	k := ShapeKey(1, 1, 1, 1, 4)
	if _, err := s.Acquire(k, 0); err == nil {
		t.Fatal("acquire of 0 bytes should fail")
	}
	if err := s.Release(k); err == nil {
		t.Fatal("release of unheld key should fail")
	}
	if _, err := s.Acquire(k, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire(k, 8); err == nil {
		t.Fatal("byte-mismatched acquire should fail")
	}
}
