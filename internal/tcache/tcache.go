// Package tcache implements the LRU Tensor Cache of §3.3.2 (the
// paper's Algorithm 2). The cache exploits the temporal locality of
// back-propagation — the head-to-tail then tail-to-head sweep makes
// the most recently used tensors the earliest reused — to keep tensors
// on GPU DRAM and avoid offload/prefetch traffic entirely whenever the
// working set fits. Tensors locked by an in-flight computation are
// never eviction candidates.
//
// The cache is pure bookkeeping: the executor owns the memory pool and
// the DMA engines, and consults the cache for hit/miss decisions and
// eviction victims.
package tcache

import "repro/internal/tensor"

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// EvictedBytes is the offload traffic caused by evictions.
	EvictedBytes int64
}

// Policy selects the replacement policy. The paper adopts LRU because
// back-propagation's head-to-tail/tail-to-head sweep reuses the most
// recent tensors first, and notes other policies might fit other
// access patterns; FIFO and MRU are provided for exactly that ablation
// (the bench harness compares them under memory pressure).
type Policy uint8

// Replacement policies.
const (
	// LRU evicts the least recently used tensor (Alg. 2).
	LRU Policy = iota
	// FIFO evicts in insertion order, ignoring reuse.
	FIFO
	// MRU evicts the most recently used tensor first.
	MRU
)

var policyNames = [...]string{"lru", "fifo", "mru"}

// String returns the policy name.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return "policy(?)"
}

// node is one entry of the intrusive recency list. Nodes removed from
// the list are recycled through the cache's spare list (chained via
// next), so steady-state insert/remove traffic does not allocate.
type node struct {
	t          *tensor.Tensor
	prev, next *node
}

// Cache is a recency list of GPU-resident tensors; the front is the
// most recently used (Alg. 2's MFU position).
type Cache struct {
	front, back *node
	index       map[int]*node
	spare       *node
	policy      Policy
	stats       Stats

	// victims is the scratch buffer Victims returns; the caller evicts
	// its contents before the next pressure scan.
	victims []*tensor.Tensor
}

// New returns an empty LRU cache (the paper's policy).
func New() *Cache { return NewWithPolicy(LRU) }

// NewWithPolicy returns an empty cache with the given replacement
// policy.
func NewWithPolicy(p Policy) *Cache {
	return &Cache{index: make(map[int]*node), policy: p}
}

// Policy returns the cache's replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Len returns the number of cached tensors.
func (c *Cache) Len() int { return len(c.index) }

// unlink detaches n from the recency list without recycling it.
func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.front = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.back = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushFront makes n the most recently used entry.
func (c *Cache) pushFront(n *node) {
	n.prev, n.next = nil, c.front
	if c.front != nil {
		c.front.prev = n
	}
	c.front = n
	if c.back == nil {
		c.back = n
	}
}

func (c *Cache) moveToFront(n *node) {
	if c.front == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Contains reports whether the tensor is cached, without touching its
// recency.
func (c *Cache) Contains(t *tensor.Tensor) bool {
	_, ok := c.index[t.ID]
	return ok
}

// Check is Alg. 2's lookup: on a hit the tensor moves to the recency
// front (unless the policy is FIFO, which ignores reuse) and true is
// returned; on a miss false is returned and the caller is expected to
// materialize the tensor and call In.
func (c *Cache) Check(t *tensor.Tensor) bool {
	if e, ok := c.index[t.ID]; ok {
		if c.policy != FIFO {
			c.moveToFront(e)
		}
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// In inserts a tensor at the front (Alg. 2's LRU.in). The tensor is
// unlocked on insertion; the executing layer locks its dependents
// separately.
func (c *Cache) In(t *tensor.Tensor) {
	if e, ok := c.index[t.ID]; ok {
		c.moveToFront(e)
		return
	}
	t.Locked = false
	n := c.spare
	if n != nil {
		c.spare = n.next
		n.next = nil
	} else {
		n = &node{}
	}
	n.t = t
	c.pushFront(n)
	c.index[t.ID] = n
}

// Remove drops a tensor from the cache without counting an eviction
// (used when liveness frees a dead tensor).
func (c *Cache) Remove(t *tensor.Tensor) {
	if e, ok := c.index[t.ID]; ok {
		c.unlink(e)
		delete(c.index, t.ID)
		*e = node{next: c.spare}
		c.spare = e
	}
}

// Victims returns the unlocked tensors the policy would evict, whose
// combined footprint reaches need bytes (Alg. 2's LRU.out scan; LRU
// and FIFO scan from the recency tail, MRU from the front). The bool
// reports whether enough unlocked bytes exist; the returned tensors
// are NOT removed — the caller offloads them and then calls Remove,
// counting the eviction via Evicted. The returned slice is scratch,
// valid until the next Victims call.
func (c *Cache) Victims(need int64) ([]*tensor.Tensor, bool) {
	victims := c.victims[:0]
	var freed int64
	backward := c.policy != MRU
	start := c.back
	if !backward {
		start = c.front
	}
	for e := start; e != nil && freed < need; {
		t := e.t
		if backward {
			e = e.prev
		} else {
			e = e.next
		}
		if t.Locked {
			continue
		}
		victims = append(victims, t)
		freed += t.Bytes()
	}
	c.victims = victims
	if freed < need {
		return nil, false
	}
	return victims, true
}

// Evicted records that a victim was offloaded and removes it.
func (c *Cache) Evicted(t *tensor.Tensor) {
	c.Remove(t)
	c.stats.Evictions++
	c.stats.EvictedBytes += t.Bytes()
}

// Tensors returns the cached tensors from MRU to LRU (for tests and
// debugging).
func (c *Cache) Tensors() []*tensor.Tensor {
	out := make([]*tensor.Tensor, 0, len(c.index))
	for e := c.front; e != nil; e = e.next {
		out = append(out, e.t)
	}
	return out
}
