// Package tcache implements the LRU Tensor Cache of §3.3.2 (the
// paper's Algorithm 2). The cache exploits the temporal locality of
// back-propagation — the head-to-tail then tail-to-head sweep makes
// the most recently used tensors the earliest reused — to keep tensors
// on GPU DRAM and avoid offload/prefetch traffic entirely whenever the
// working set fits. Tensors locked by an in-flight computation are
// never eviction candidates.
//
// The cache is pure bookkeeping: the executor owns the memory pool and
// the DMA engines, and consults the cache for hit/miss decisions and
// eviction victims.
package tcache

import (
	"container/list"

	"repro/internal/tensor"
)

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// EvictedBytes is the offload traffic caused by evictions.
	EvictedBytes int64
}

// Policy selects the replacement policy. The paper adopts LRU because
// back-propagation's head-to-tail/tail-to-head sweep reuses the most
// recent tensors first, and notes other policies might fit other
// access patterns; FIFO and MRU are provided for exactly that ablation
// (the bench harness compares them under memory pressure).
type Policy uint8

// Replacement policies.
const (
	// LRU evicts the least recently used tensor (Alg. 2).
	LRU Policy = iota
	// FIFO evicts in insertion order, ignoring reuse.
	FIFO
	// MRU evicts the most recently used tensor first.
	MRU
)

var policyNames = [...]string{"lru", "fifo", "mru"}

// String returns the policy name.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return "policy(?)"
}

// Cache is a recency list of GPU-resident tensors; the front is the
// most recently used (Alg. 2's MFU position).
type Cache struct {
	ll     *list.List // of *tensor.Tensor
	index  map[int]*list.Element
	policy Policy
	stats  Stats
}

// New returns an empty LRU cache (the paper's policy).
func New() *Cache { return NewWithPolicy(LRU) }

// NewWithPolicy returns an empty cache with the given replacement
// policy.
func NewWithPolicy(p Policy) *Cache {
	return &Cache{ll: list.New(), index: make(map[int]*list.Element), policy: p}
}

// Policy returns the cache's replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Len returns the number of cached tensors.
func (c *Cache) Len() int { return c.ll.Len() }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Contains reports whether the tensor is cached, without touching its
// recency.
func (c *Cache) Contains(t *tensor.Tensor) bool {
	_, ok := c.index[t.ID]
	return ok
}

// Check is Alg. 2's lookup: on a hit the tensor moves to the recency
// front (unless the policy is FIFO, which ignores reuse) and true is
// returned; on a miss false is returned and the caller is expected to
// materialize the tensor and call In.
func (c *Cache) Check(t *tensor.Tensor) bool {
	if e, ok := c.index[t.ID]; ok {
		if c.policy != FIFO {
			c.ll.MoveToFront(e)
		}
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// In inserts a tensor at the front (Alg. 2's LRU.in). The tensor is
// unlocked on insertion; the executing layer locks its dependents
// separately.
func (c *Cache) In(t *tensor.Tensor) {
	if e, ok := c.index[t.ID]; ok {
		c.ll.MoveToFront(e)
		return
	}
	t.Locked = false
	c.index[t.ID] = c.ll.PushFront(t)
}

// Remove drops a tensor from the cache without counting an eviction
// (used when liveness frees a dead tensor).
func (c *Cache) Remove(t *tensor.Tensor) {
	if e, ok := c.index[t.ID]; ok {
		c.ll.Remove(e)
		delete(c.index, t.ID)
	}
}

// Victims returns the unlocked tensors the policy would evict, whose
// combined footprint reaches need bytes (Alg. 2's LRU.out scan; LRU
// and FIFO scan from the recency tail, MRU from the front). The bool
// reports whether enough unlocked bytes exist; the returned tensors
// are NOT removed — the caller offloads them and then calls Remove,
// counting the eviction via Evicted.
func (c *Cache) Victims(need int64) ([]*tensor.Tensor, bool) {
	var victims []*tensor.Tensor
	var freed int64
	next := func(e *list.Element) *list.Element { return e.Prev() }
	start := c.ll.Back()
	if c.policy == MRU {
		next = func(e *list.Element) *list.Element { return e.Next() }
		start = c.ll.Front()
	}
	for e := start; e != nil && freed < need; e = next(e) {
		t := e.Value.(*tensor.Tensor)
		if t.Locked {
			continue
		}
		victims = append(victims, t)
		freed += t.Bytes()
	}
	if freed < need {
		return nil, false
	}
	return victims, true
}

// Evicted records that a victim was offloaded and removes it.
func (c *Cache) Evicted(t *tensor.Tensor) {
	c.Remove(t)
	c.stats.Evictions++
	c.stats.EvictedBytes += t.Bytes()
}

// Tensors returns the cached tensors from MRU to LRU (for tests and
// debugging).
func (c *Cache) Tensors() []*tensor.Tensor {
	out := make([]*tensor.Tensor, 0, c.ll.Len())
	for e := c.ll.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*tensor.Tensor))
	}
	return out
}
