package dataparallel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/sim"
)

// The bucketed exchange degenerates to the classic formula at one
// bucket, and bucketing only ever adds per-step latency.
func TestGangAllReduceBucketing(t *testing.T) {
	link := hw.LinkSpec{Name: "t", BytesPerSec: 1e9, Latency: sim.Microsecond}
	bytes, k := int64(64<<20), 8
	one := GangAllReduce(link, bytes, k, 1)
	if one != RingAllReduceTime(link, bytes, k) {
		t.Error("one bucket must match the classic ring formula")
	}
	prev := one
	for buckets := 2; buckets <= 64; buckets *= 2 {
		got := GangAllReduce(link, bytes, k, buckets)
		if got < prev {
			t.Errorf("%d buckets cost %v, less than %d buckets %v", buckets, got, buckets/2, prev)
		}
		prev = got
	}
	// On a latency-free wire the split is exact: buckets cost nothing.
	free := hw.LinkSpec{Name: "f", BytesPerSec: 1e9}
	a := GangAllReduce(free, 64<<20, 8, 1)
	b := GangAllReduce(free, 64<<20, 8, 8)
	// Integer chunking may drop sub-byte remainders per bucket.
	if d := a - b; d < 0 || d > sim.Microsecond {
		t.Errorf("latency-free bucketing shifted cost by %v", d)
	}
}

// Property: the exchange price is monotone in message size.
func TestGangAllReduceMonotoneInSize(t *testing.T) {
	link := hw.PCIeP2P
	var prev sim.Duration
	for bytes := int64(1 << 10); bytes <= 1<<30; bytes <<= 2 {
		got := GangAllReduce(link, bytes, 4, DefaultBuckets)
		if got < prev {
			t.Fatalf("%d bytes cost %v, less than a smaller message's %v", bytes, got, prev)
		}
		prev = got
	}
}

// The overlap model: serialized exposes everything; overlapped hides
// up to half the iteration and exposes the remainder.
func TestExposedAllReduceModel(t *testing.T) {
	iter := sim.Duration(10 * sim.Millisecond)
	cases := []struct {
		name    string
		ar      sim.Duration
		overlap bool
		want    sim.Duration
	}{
		{"serialized exposes all", 3 * sim.Millisecond, false, 3 * sim.Millisecond},
		{"small exchange fully hidden", 3 * sim.Millisecond, true, 0},
		{"exactly the window", 5 * sim.Millisecond, true, 0},
		{"overflow is exposed", 8 * sim.Millisecond, true, 3 * sim.Millisecond},
		{"zero exchange", 0, true, 0},
	}
	for _, c := range cases {
		if got := ExposedAllReduce(c.ar, iter, c.overlap); got != c.want {
			t.Errorf("%s: ExposedAllReduce(%v, %v, %v) = %v, want %v", c.name, c.ar, iter, c.overlap, got, c.want)
		}
	}
}

// A placed gang is priced by its slowest pairwise wire: the same
// replicas cost more per iteration across nodes than inside an
// NVLink island.
func TestGangPlacementPricesBySlowestTier(t *testing.T) {
	topo := hw.DefaultTopology()
	run := func(gang []int) *Result {
		cfg := cfgFor(len(gang), false)
		cfg.Interconnect = hw.LinkSpec{}
		cfg.Gang = gang
		cfg.Topology = topo
		r, err := Run(nnet.AlexNet, 64, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	island := run([]int{0, 1, 2, 3})
	crossNode := run([]int{0, 8, 16, 24})
	if island.AllReduceTime >= crossNode.AllReduceTime {
		t.Errorf("island all-reduce %v not below cross-node %v", island.AllReduceTime, crossNode.AllReduceTime)
	}
	if island.IterTime >= crossNode.IterTime {
		t.Errorf("island iteration %v not below cross-node %v", island.IterTime, crossNode.IterTime)
	}
}

// PriceGang is the single pricing rule both admission and elastic
// shrink apply: zero for a single device, the slowest-tier bucketed
// exchange otherwise — so a shrunk gang is re-priced exactly as a
// freshly admitted gang of the same placement would be.
func TestPriceGang(t *testing.T) {
	topo := hw.DefaultTopology()
	bytes := int64(256 << 20)

	if got := PriceGang(topo, nil, bytes, DefaultBuckets); got != 0 {
		t.Errorf("empty gang priced %v", got)
	}
	if got := PriceGang(topo, []int{3}, bytes, DefaultBuckets); got != 0 {
		t.Errorf("single-device gang priced %v", got)
	}

	island := []int{0, 1, 2, 3}
	if got, want := PriceGang(topo, island, bytes, DefaultBuckets),
		GangAllReduce(topo.SlowestLink(island), bytes, 4, DefaultBuckets); got != want {
		t.Errorf("island gang priced %v, want %v", got, want)
	}

	// Dropping a member from an NVLink island keeps the tier but
	// shrinks the ring: the survivors' price is a fresh 3-wide pricing,
	// never a stale 4-wide one.
	survivors := []int{0, 1, 3}
	got := PriceGang(topo, survivors, bytes, DefaultBuckets)
	if want := GangAllReduce(topo.SlowestLink(survivors), bytes, 3, DefaultBuckets); got != want {
		t.Errorf("survivor gang priced %v, want %v", got, want)
	}
	if full := PriceGang(topo, island, bytes, DefaultBuckets); got >= full {
		t.Errorf("3 survivors cost %v, not below the 4-wide %v", got, full)
	}

	// A gang spanning islands prices by the slower tier, so losing the
	// only cross-island member makes the survivors strictly cheaper.
	spanning := []int{2, 3, 4}
	inIsland := []int{2, 3}
	if a, b := PriceGang(topo, spanning, bytes, DefaultBuckets),
		PriceGang(topo, inIsland, bytes, DefaultBuckets); b >= a {
		t.Errorf("intra-island survivors %v not cheaper than spanning gang %v", b, a)
	}
}
