package dataparallel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nnet"
)

func cfgFor(k int, overlap bool) Config {
	return Config{
		Replicas:     k,
		PerGPU:       core.SuperNeurons(hw.TeslaK40c),
		Interconnect: hw.PCIeP2P,
		OverlapComm:  overlap,
	}
}

func TestSingleReplicaHasNoComm(t *testing.T) {
	r, err := Run(nnet.AlexNet, 64, cfgFor(1, false))
	if err != nil {
		t.Fatal(err)
	}
	if r.AllReduceTime != 0 || r.ExposedComm != 0 {
		t.Error("one replica must not communicate")
	}
	if r.ScalingEfficiency < 0.999 || r.ScalingEfficiency > 1.001 {
		t.Errorf("single-replica efficiency = %v, want 1", r.ScalingEfficiency)
	}
}

func TestRingAllReduceFormula(t *testing.T) {
	link := hw.LinkSpec{Name: "t", BytesPerSec: 1e9, Latency: 0}
	// 8 GPUs, 8e9 bytes: 2*7 steps of 1e9 bytes at 1 GB/s = 14 s.
	got := RingAllReduceTime(link, 8e9, 8)
	if got.Seconds() < 13.99 || got.Seconds() > 14.01 {
		t.Errorf("ring time = %v, want 14s", got)
	}
	if RingAllReduceTime(link, 1e9, 1) != 0 {
		t.Error("k=1 must cost nothing")
	}
}

func TestThroughputScalesSublinearly(t *testing.T) {
	counts := []int{1, 2, 4, 8}
	rs, err := Scaling(nnet.ResNet50Builder(), 32, cfgFor(1, false), counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].GlobalThroughput <= rs[i-1].GlobalThroughput {
			t.Errorf("throughput must grow with replicas: %v", rs[i].GlobalThroughput)
		}
		if rs[i].ScalingEfficiency >= rs[i-1].ScalingEfficiency {
			t.Errorf("efficiency must fall with replicas (gradient exchange): %v then %v",
				rs[i-1].ScalingEfficiency, rs[i].ScalingEfficiency)
		}
	}
	if rs[3].ScalingEfficiency <= 0.3 || rs[3].ScalingEfficiency >= 1 {
		t.Errorf("8-GPU efficiency = %.2f, expected (0.3, 1)", rs[3].ScalingEfficiency)
	}
}

func TestOverlapHidesCommunication(t *testing.T) {
	plain, err := Run(nnet.ResNet50Builder(), 32, cfgFor(4, false))
	if err != nil {
		t.Fatal(err)
	}
	overlapped, err := Run(nnet.ResNet50Builder(), 32, cfgFor(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.ExposedComm >= plain.ExposedComm {
		t.Errorf("overlap must hide communication: %v vs %v",
			overlapped.ExposedComm, plain.ExposedComm)
	}
	if overlapped.GlobalThroughput <= plain.GlobalThroughput {
		t.Error("overlap must improve throughput")
	}
}

func TestFasterInterconnectScalesBetter(t *testing.T) {
	slow := cfgFor(8, false)
	slow.Interconnect = hw.GPUDirectRDMA
	fast := cfgFor(8, false)
	fast.Interconnect = hw.PCIeP2P
	rSlow, err := Run(nnet.VGG16, 16, slow)
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := Run(nnet.VGG16, 16, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rFast.ScalingEfficiency <= rSlow.ScalingEfficiency {
		t.Errorf("faster link must scale better: %.3f vs %.3f",
			rFast.ScalingEfficiency, rSlow.ScalingEfficiency)
	}
}

func TestInvalidReplicaCount(t *testing.T) {
	if _, err := Run(nnet.AlexNet, 8, cfgFor(0, false)); err == nil {
		t.Fatal("zero replicas must error")
	}
}
