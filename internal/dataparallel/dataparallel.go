// Package dataparallel models synchronous data-parallel training on
// top of the per-GPU SuperNeurons runtime. The paper (§2.1) frames its
// contribution inside this regime: every GPU holds a network replica
// and computes a sub-gradient over a sub-batch, and the sub-gradients
// are aggregated into one global gradient before the weight update —
// the only inter-GPU communication, exchanged here with a bandwidth-
// optimal ring all-reduce (Wang et al. [25]).
//
// Replicas are deterministic and identical, so one simulated replica
// characterizes them all; the package composes its iteration time with
// the all-reduce cost over the chosen interconnect.
package dataparallel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/sim"
)

// Config describes a data-parallel training setup.
type Config struct {
	// Replicas is the number of GPUs, each holding a full replica.
	Replicas int
	// PerGPU configures each replica's runtime.
	PerGPU core.Config
	// Interconnect carries the gradient exchange (PCIe P2P when zero).
	Interconnect hw.LinkSpec
	// OverlapComm overlaps the all-reduce with the tail of the
	// backward pass (bucketed gradient exchange); without it the
	// exchange serializes after the iteration.
	OverlapComm bool
}

// Result summarizes one data-parallel iteration.
type Result struct {
	Replicas int
	// Replica is the per-GPU profile (identical across GPUs).
	Replica *core.Result
	// GradientBytes is the per-replica gradient volume exchanged.
	GradientBytes int64
	// AllReduceTime is the ring all-reduce duration; ExposedComm the
	// part not hidden behind computation.
	AllReduceTime sim.Duration
	ExposedComm   sim.Duration
	// IterTime is the global iteration time; GlobalThroughput the
	// aggregate img/s across replicas.
	IterTime          sim.Duration
	GlobalThroughput  float64
	ScalingEfficiency float64 // GlobalThroughput / (Replicas × single-GPU throughput)
}

// RingAllReduceTime returns the classic ring all-reduce cost for n
// bytes across k participants: 2(k-1)/k of the data crosses each
// link, plus per-step latency.
func RingAllReduceTime(link hw.LinkSpec, bytes int64, k int) sim.Duration {
	if k <= 1 {
		return 0
	}
	steps := 2 * (k - 1)
	chunk := bytes / int64(k)
	var total sim.Duration
	for i := 0; i < steps; i++ {
		total += link.TransferTime(chunk)
	}
	return total
}

// Run simulates one synchronous data-parallel iteration: build
// constructs the per-GPU replica at the per-GPU batch size.
func Run(build nnet.BuilderFunc, perGPUBatch int, cfg Config) (*Result, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("dataparallel: need at least one replica, got %d", cfg.Replicas)
	}
	if cfg.Interconnect.BytesPerSec == 0 {
		cfg.Interconnect = hw.PCIeP2P
	}
	net := build(perGPUBatch)
	rep, err := core.Run(net, cfg.PerGPU)
	if err != nil {
		return nil, fmt.Errorf("dataparallel: replica: %w", err)
	}
	grad := net.ParamBytes()
	ar := RingAllReduceTime(cfg.Interconnect, grad, cfg.Replicas)

	exposed := ar
	if cfg.OverlapComm && cfg.Replicas > 1 {
		// Bucketed exchange hides communication behind the backward
		// half of the iteration; only the remainder is exposed.
		bwdWindow := rep.IterTime / 2
		if ar > bwdWindow {
			exposed = ar - bwdWindow
		} else {
			exposed = 0
		}
	}

	iter := rep.IterTime + exposed
	res := &Result{
		Replicas:      cfg.Replicas,
		Replica:       rep,
		GradientBytes: grad,
		AllReduceTime: ar,
		ExposedComm:   exposed,
		IterTime:      iter,
	}
	if iter > 0 {
		res.GlobalThroughput = float64(cfg.Replicas*perGPUBatch) / iter.Seconds()
		res.ScalingEfficiency = res.GlobalThroughput / (float64(cfg.Replicas) * rep.Throughput)
	}
	return res, nil
}

// Scaling sweeps the replica count and returns one Result per entry
// of counts, sharing the per-GPU configuration.
func Scaling(build nnet.BuilderFunc, perGPUBatch int, cfg Config, counts []int) ([]*Result, error) {
	out := make([]*Result, len(counts))
	for i, k := range counts {
		c := cfg
		c.Replicas = k
		r, err := Run(build, perGPUBatch, c)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
