// Package dataparallel models synchronous data-parallel training on
// top of the per-GPU SuperNeurons runtime. The paper (§2.1) frames its
// contribution inside this regime: every GPU holds a network replica
// and computes a sub-gradient over a sub-batch, and the sub-gradients
// are aggregated into one global gradient before the weight update —
// the only inter-GPU communication, exchanged here with a bandwidth-
// optimal ring all-reduce (Wang et al. [25]).
//
// Replicas are deterministic and identical, so one simulated replica
// characterizes them all; the package composes its iteration time with
// the all-reduce cost over the chosen interconnect.
package dataparallel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nnet"
	"repro/internal/sim"
)

// Config describes a data-parallel training setup.
type Config struct {
	// Replicas is the number of GPUs, each holding a full replica.
	Replicas int
	// PerGPU configures each replica's runtime.
	PerGPU core.Config
	// Interconnect carries the gradient exchange (PCIe P2P when zero).
	// When Gang is set it is derived from Topology instead.
	Interconnect hw.LinkSpec
	// Gang optionally names the concrete device indices of the
	// replicas; with a Topology it prices the exchange by the slowest
	// pairwise link in the gang (a ring moves every byte across every
	// hop, so the worst wire sets the collective's speed).
	Gang []int
	// Topology classifies device pairs into interconnect tiers when
	// Gang is set.
	Topology hw.Topology
	// Buckets splits the gradient into that many ring all-reduces
	// (DefaultBuckets when 0). Bucketing is what makes overlap
	// possible — a bucket can start reducing as soon as its gradients
	// exist — at the price of one extra per-step link latency per
	// bucket.
	Buckets int
	// OverlapComm overlaps the all-reduce with the tail of the
	// backward pass (bucketed gradient exchange); without it the
	// exchange serializes after the iteration.
	OverlapComm bool
}

// Result summarizes one data-parallel iteration.
type Result struct {
	Replicas int
	// Replica is the per-GPU profile (identical across GPUs).
	Replica *core.Result
	// GradientBytes is the per-replica gradient volume exchanged.
	GradientBytes int64
	// AllReduceTime is the ring all-reduce duration; ExposedComm the
	// part not hidden behind computation.
	AllReduceTime sim.Duration
	ExposedComm   sim.Duration
	// IterTime is the global iteration time; GlobalThroughput the
	// aggregate img/s across replicas.
	IterTime          sim.Duration
	GlobalThroughput  float64
	ScalingEfficiency float64 // GlobalThroughput / (Replicas × single-GPU throughput)
}

// RingAllReduceTime returns the classic ring all-reduce cost for n
// bytes across k participants: 2(k-1)/k of the data crosses each
// link, plus per-step latency.
func RingAllReduceTime(link hw.LinkSpec, bytes int64, k int) sim.Duration {
	return GangAllReduce(link, bytes, k, 1)
}

// DefaultBuckets is the gradient bucket count of the bucketed
// exchange: fine enough that the first bucket is ready early in the
// backward pass, coarse enough that the per-bucket latency overhead
// stays below a percent of the bandwidth term for the networks in the
// zoo.
const DefaultBuckets = 8

// GangAllReduce prices a bucketed ring all-reduce of n bytes across k
// participants on one link (the caller passes the slowest link of the
// gang; see hw.Topology.SlowestLink). The gradient is split into
// `buckets` independent ring all-reduces; each moves 2(k-1)/k of its
// bucket across every link with a per-step setup latency, so more
// buckets cost more latency but expose earlier overlap opportunities.
func GangAllReduce(link hw.LinkSpec, bytes int64, k, buckets int) sim.Duration {
	if k <= 1 || bytes <= 0 {
		return 0
	}
	if buckets <= 0 {
		buckets = 1
	}
	if int64(buckets) > bytes {
		buckets = int(bytes)
	}
	steps := 2 * (k - 1)
	per := bytes / int64(buckets)
	var total sim.Duration
	for b := 0; b < buckets; b++ {
		bb := per
		if b == buckets-1 {
			bb = bytes - per*int64(buckets-1) // last bucket carries the remainder
		}
		chunk := bb / int64(k)
		for i := 0; i < steps; i++ {
			total += link.TransferTime(chunk)
		}
	}
	return total
}

// PriceGang prices a placed gang's per-iteration collective: the
// bucketed ring all-reduce of the replica gradient across the gang,
// set by the slowest pairwise link inside it. Admission and elastic
// gang shrink both route through it, so a shrunk gang is re-priced by
// exactly the rule that priced it at admission — over the surviving
// topology subset. A gang of one (or none) has no collective.
func PriceGang(topo hw.Topology, gang []int, gradientBytes int64, buckets int) sim.Duration {
	if len(gang) <= 1 {
		return 0
	}
	return GangAllReduce(topo.SlowestLink(gang), gradientBytes, len(gang), buckets)
}

// ExposedAllReduce is the overlap model: with overlap enabled, the
// bucketed exchange hides behind the backward half of the iteration
// (gradients materialize back-to-front through backprop, so roughly
// half the iteration is exchange-eligible) and only the remainder
// extends the iteration; serialized, the whole exchange is exposed.
func ExposedAllReduce(allReduce, iterTime sim.Duration, overlap bool) sim.Duration {
	if !overlap {
		return allReduce
	}
	window := iterTime / 2
	if allReduce > window {
		return allReduce - window
	}
	return 0
}

// Run simulates one synchronous data-parallel iteration: build
// constructs the per-GPU replica at the per-GPU batch size.
func Run(build nnet.BuilderFunc, perGPUBatch int, cfg Config) (*Result, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("dataparallel: need at least one replica, got %d", cfg.Replicas)
	}
	if len(cfg.Gang) > 0 {
		// A placed gang is priced by its slowest pairwise wire.
		cfg.Interconnect = cfg.Topology.WithDefaults().SlowestLink(cfg.Gang)
	}
	if cfg.Interconnect.BytesPerSec == 0 {
		cfg.Interconnect = hw.PCIeP2P
	}
	buckets := cfg.Buckets
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	net := build(perGPUBatch)
	rep, err := core.Run(net, cfg.PerGPU)
	if err != nil {
		return nil, fmt.Errorf("dataparallel: replica: %w", err)
	}
	grad := net.ParamBytes()
	ar := GangAllReduce(cfg.Interconnect, grad, cfg.Replicas, buckets)
	exposed := ExposedAllReduce(ar, rep.IterTime, cfg.OverlapComm && cfg.Replicas > 1)
	iter := rep.IterTime + exposed
	res := &Result{
		Replicas:      cfg.Replicas,
		Replica:       rep,
		GradientBytes: grad,
		AllReduceTime: ar,
		ExposedComm:   exposed,
		IterTime:      iter,
	}
	if iter > 0 {
		res.GlobalThroughput = float64(cfg.Replicas*perGPUBatch) / iter.Seconds()
		res.ScalingEfficiency = res.GlobalThroughput / (float64(cfg.Replicas) * rep.Throughput)
	}
	return res, nil
}

// Scaling sweeps the replica count and returns one Result per entry
// of counts, sharing the per-GPU configuration.
func Scaling(build nnet.BuilderFunc, perGPUBatch int, cfg Config, counts []int) ([]*Result, error) {
	out := make([]*Result, len(counts))
	for i, k := range counts {
		c := cfg
		c.Replicas = k
		r, err := Run(build, perGPUBatch, c)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
