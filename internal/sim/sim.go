// Package sim provides a deterministic virtual-time discrete-event
// simulator used as the execution substrate for the SuperNeurons runtime.
//
// The model mirrors a CUDA device: a set of independent serial engines
// (the compute engine and the two DMA copy engines) consume tasks in
// issue order, while a single host thread issues work asynchronously and
// occasionally blocks on events, exactly like cudaEventSynchronize.
//
// Because every engine executes its queue serially and task durations
// are supplied by the caller, the entire schedule can be resolved with
// timestamp propagation: a task starts at
//
//	max(issue time, engine free time, completion of all dependencies)
//
// and finishes start+duration later. This produces the same who-waits-
// on-whom structure as a real stream/event system, deterministically and
// without any wall-clock dependence.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the timeline
// origin.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String renders the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Event marks the completion point of a submitted task. The zero Event
// is "already complete at time zero", which makes events safe to use
// before any task has produced one.
type Event struct {
	at Time
}

// At returns the virtual time at which the event completes.
func (e Event) At() Time { return e.at }

// DoneBy reports whether the event has completed at time now. This is
// the analogue of cudaEventQuery.
func (e Event) DoneBy(now Time) bool { return e.at <= now }

// MaxEvent returns the event that completes last.
func MaxEvent(events ...Event) Event {
	var m Event
	for _, e := range events {
		if e.at > m.at {
			m = e
		}
	}
	return m
}

// Engine is a serially-executing resource: the GPU compute engine or a
// DMA copy engine. Tasks submitted to an engine run one at a time in
// submission order.
type Engine struct {
	name   string
	freeAt Time
	busy   Duration
	tasks  int
}

// NewEngine returns an idle engine. Most callers should use
// Timeline.NewEngine so the engine participates in SyncAll.
func NewEngine(name string) *Engine { return &Engine{name: name} }

// Name returns the engine's name.
func (e *Engine) Name() string { return e.name }

// FreeAt returns the time at which the engine's queue drains.
func (e *Engine) FreeAt() Time { return e.freeAt }

// BusyTime returns the total virtual time the engine spent executing.
func (e *Engine) BusyTime() Duration { return e.busy }

// Tasks returns the number of tasks executed.
func (e *Engine) Tasks() int { return e.tasks }

// Submit enqueues a task issued at time issue with the given duration,
// gated on deps. It returns the completion event.
func (e *Engine) Submit(issue Time, dur Duration, deps ...Event) Event {
	if dur < 0 {
		panic("sim: negative task duration")
	}
	start := issue
	for _, d := range deps {
		if d.at > start {
			start = d.at
		}
	}
	if e.freeAt > start {
		start = e.freeAt
	}
	end := start + Time(dur)
	e.freeAt = end
	e.busy += dur
	e.tasks++
	return Event{at: end}
}

// Timeline couples a host thread clock with a set of engines. The host
// issues work at Now() and advances either by doing synchronous work
// (Advance) or by blocking on events (Wait).
type Timeline struct {
	now     Time
	engines []*Engine
}

// NewTimeline returns a timeline at time zero with no engines.
func NewTimeline() *Timeline { return &Timeline{} }

// NewEngine creates an engine registered with the timeline.
func (t *Timeline) NewEngine(name string) *Engine {
	e := NewEngine(name)
	t.engines = append(t.engines, e)
	return e
}

// Now returns the host thread's current virtual time.
func (t *Timeline) Now() Time { return t.now }

// Advance moves the host clock forward by d, modeling synchronous
// host-side work such as a cudaMalloc call.
func (t *Timeline) Advance(d Duration) {
	if d < 0 {
		panic("sim: negative advance")
	}
	t.now += Time(d)
}

// Wait blocks the host until the event completes, like
// cudaEventSynchronize. Waiting on an already-complete event is free.
func (t *Timeline) Wait(e Event) {
	if e.at > t.now {
		t.now = e.at
	}
}

// WaitAll blocks the host until every event completes.
func (t *Timeline) WaitAll(events ...Event) {
	for _, e := range events {
		t.Wait(e)
	}
}

// SyncAll drains every registered engine, like cudaDeviceSynchronize,
// and returns the resulting host time.
func (t *Timeline) SyncAll() Time {
	for _, e := range t.engines {
		if e.freeAt > t.now {
			t.now = e.freeAt
		}
	}
	return t.now
}

// Engines returns the registered engines in creation order.
func (t *Timeline) Engines() []*Engine { return t.engines }

// Utilization returns busy/elapsed for the engine over the timeline's
// lifetime so far, in [0,1]. A timeline at time zero reports zero.
func (t *Timeline) Utilization(e *Engine) float64 {
	if t.now == 0 {
		return 0
	}
	return float64(e.busy) / float64(t.now)
}
