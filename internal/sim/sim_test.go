package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroEventIsComplete(t *testing.T) {
	var e Event
	if !e.DoneBy(0) {
		t.Fatal("zero event should be complete at time 0")
	}
	if e.At() != 0 {
		t.Fatalf("zero event At = %d, want 0", e.At())
	}
}

func TestEngineSerializesTasks(t *testing.T) {
	e := NewEngine("compute")
	e1 := e.Submit(0, 100)
	e2 := e.Submit(0, 50)
	if e1.At() != 100 {
		t.Errorf("first task completes at %d, want 100", e1.At())
	}
	if e2.At() != 150 {
		t.Errorf("second task completes at %d, want 150 (serialized)", e2.At())
	}
}

func TestSubmitRespectsDependencies(t *testing.T) {
	tl := NewTimeline()
	dma := tl.NewEngine("h2d")
	cmp := tl.NewEngine("compute")
	xfer := dma.Submit(0, 300)
	k := cmp.Submit(0, 100, xfer)
	if k.At() != 400 {
		t.Errorf("kernel gated on transfer completes at %d, want 400", k.At())
	}
}

func TestSubmitRespectsIssueTime(t *testing.T) {
	e := NewEngine("compute")
	ev := e.Submit(500, 100)
	if ev.At() != 600 {
		t.Errorf("task issued at 500 completes at %d, want 600", ev.At())
	}
}

func TestOverlapOfIndependentEngines(t *testing.T) {
	tl := NewTimeline()
	cmp := tl.NewEngine("compute")
	d2h := tl.NewEngine("d2h")
	k := cmp.Submit(0, 1000)
	x := d2h.Submit(0, 800)
	if k.At() != 1000 || x.At() != 800 {
		t.Fatalf("independent engines must overlap: got %d and %d", k.At(), x.At())
	}
	if got := tl.SyncAll(); got != 1000 {
		t.Errorf("SyncAll = %d, want 1000", got)
	}
}

func TestWaitAdvancesHostOnlyForward(t *testing.T) {
	tl := NewTimeline()
	e := tl.NewEngine("compute")
	ev := e.Submit(0, 100)
	tl.Advance(500)
	tl.Wait(ev) // already complete; must not move time backward
	if tl.Now() != 500 {
		t.Errorf("Wait on past event moved clock to %d, want 500", tl.Now())
	}
	ev2 := e.Submit(tl.Now(), 100)
	tl.Wait(ev2)
	if tl.Now() != 600 {
		t.Errorf("Wait on future event gives %d, want 600", tl.Now())
	}
}

func TestWaitAll(t *testing.T) {
	tl := NewTimeline()
	a := tl.NewEngine("a")
	b := tl.NewEngine("b")
	e1 := a.Submit(0, 70)
	e2 := b.Submit(0, 90)
	tl.WaitAll(e1, e2)
	if tl.Now() != 90 {
		t.Errorf("WaitAll gives %d, want 90", tl.Now())
	}
}

func TestMaxEvent(t *testing.T) {
	e := NewEngine("x")
	e1 := e.Submit(0, 10)
	e2 := e.Submit(0, 10)
	if got := MaxEvent(e1, e2); got != e2 {
		t.Errorf("MaxEvent picked %v, want %v", got, e2)
	}
	if got := MaxEvent(); got.At() != 0 {
		t.Errorf("MaxEvent() = %v, want zero event", got)
	}
}

func TestUtilization(t *testing.T) {
	tl := NewTimeline()
	e := tl.NewEngine("compute")
	if tl.Utilization(e) != 0 {
		t.Fatal("utilization at time zero must be 0")
	}
	ev := e.Submit(0, 400)
	tl.Wait(ev)
	tl.Advance(600)
	if got := tl.Utilization(e); got != 0.4 {
		t.Errorf("utilization = %v, want 0.4", got)
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Submit with negative duration must panic")
		}
	}()
	NewEngine("x").Submit(0, -1)
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance with negative duration must panic")
		}
	}()
	NewTimeline().Advance(-1)
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

// Property: an engine's completion times are strictly monotone in
// submission order (serial execution), and total busy time equals the
// sum of durations.
func TestEngineMonotoneProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		e := NewEngine("p")
		var last Time
		var sum Duration
		for _, d := range durs {
			ev := e.Submit(0, Duration(d))
			if ev.At() < last {
				return false
			}
			last = ev.At()
			sum += Duration(d)
		}
		return e.BusyTime() == sum && e.Tasks() == len(durs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a task never starts before any of its dependencies
// complete, regardless of issue order across engines.
func TestDependencyOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTimeline()
		engines := []*Engine{tl.NewEngine("a"), tl.NewEngine("b"), tl.NewEngine("c")}
		var events []Event
		for i := 0; i < int(n)+1; i++ {
			var deps []Event
			for _, ev := range events {
				if rng.Intn(4) == 0 {
					deps = append(deps, ev)
				}
			}
			dur := Duration(rng.Intn(1000))
			ev := engines[rng.Intn(len(engines))].Submit(0, dur, deps...)
			for _, d := range deps {
				if ev.At()-Time(dur) < d.At() {
					return false
				}
			}
			events = append(events, ev)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SyncAll equals the max engine free time and the host clock
// never decreases.
func TestSyncAllProperty(t *testing.T) {
	f := func(durA, durB uint16) bool {
		tl := NewTimeline()
		a := tl.NewEngine("a")
		b := tl.NewEngine("b")
		ea := a.Submit(0, Duration(durA))
		eb := b.Submit(0, Duration(durB))
		want := ea.At()
		if eb.At() > want {
			want = eb.At()
		}
		return tl.SyncAll() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
