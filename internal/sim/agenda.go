package sim

import "container/heap"

// Agenda is a deterministic discrete-event queue: handlers posted at
// virtual times run in (time, post-order) order, so two events at the
// same instant execute in the order they were scheduled. It is the
// event-loop counterpart to Engine's timestamp propagation — Engine
// resolves who-waits-on-whom inside one workload, Agenda orders the
// decision points (arrivals, completions) of many workloads sharing a
// cluster.
type Agenda struct {
	h   agendaHeap
	seq int64
	now Time
}

type agendaItem struct {
	at  Time
	seq int64
	run func(now Time)
}

type agendaHeap []agendaItem

func (h agendaHeap) Len() int { return len(h) }
func (h agendaHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h agendaHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *agendaHeap) Push(x any)   { *h = append(*h, x.(agendaItem)) }
func (h *agendaHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Post schedules run to execute at virtual time at. Posting into the
// past (before the last executed event) panics: virtual time only
// moves forward.
func (a *Agenda) Post(at Time, run func(now Time)) {
	if at < a.now {
		panic("sim: Agenda.Post into the past")
	}
	a.seq++
	heap.Push(&a.h, agendaItem{at: at, seq: a.seq, run: run})
}

// Len returns the number of pending events.
func (a *Agenda) Len() int { return len(a.h) }

// Now returns the time of the last executed event.
func (a *Agenda) Now() Time { return a.now }

// RunNext executes the earliest pending event and reports whether one
// ran. Handlers may Post further events.
func (a *Agenda) RunNext() bool {
	if len(a.h) == 0 {
		return false
	}
	it := heap.Pop(&a.h).(agendaItem)
	a.now = it.at
	it.run(it.at)
	return true
}

// Drain runs events until the agenda is empty and returns the time of
// the last one.
func (a *Agenda) Drain() Time {
	for a.RunNext() {
	}
	return a.now
}
