package sim

import (
	"reflect"
	"testing"
)

func TestAgendaOrdersByTimeThenPostOrder(t *testing.T) {
	var a Agenda
	var got []string
	rec := func(s string) func(Time) { return func(Time) { got = append(got, s) } }
	a.Post(30, rec("c"))
	a.Post(10, rec("a1"))
	a.Post(10, rec("a2")) // same instant: post order wins
	a.Post(20, rec("b"))
	end := a.Drain()
	if want := []string{"a1", "a2", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("order %v, want %v", got, want)
	}
	if end != 30 {
		t.Errorf("drain ended at %d, want 30", end)
	}
}

func TestAgendaHandlersMayPost(t *testing.T) {
	var a Agenda
	var got []Time
	a.Post(5, func(now Time) {
		got = append(got, now)
		a.Post(now+5, func(now Time) { got = append(got, now) })
	})
	a.Drain()
	if want := []Time{5, 10}; !reflect.DeepEqual(got, want) {
		t.Errorf("times %v, want %v", got, want)
	}
}

func TestAgendaRejectsPastPost(t *testing.T) {
	var a Agenda
	a.Post(10, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("posting into the past did not panic")
			}
		}()
		a.Post(now-1, func(Time) {})
	})
	a.Drain()
}
