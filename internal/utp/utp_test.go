package utp

import (
	"testing"

	"repro/internal/layers"
	"repro/internal/nnet"
	"repro/internal/program"
	"repro/internal/recompute"
)

func TestOffloadConvSelectsConvOutputsOnly(t *testing.T) {
	net := nnet.AlexNet(32)
	p := program.Build(net)
	rp := recompute.BuildPlan(p, recompute.CostAware)
	pl := BuildPlan(p, OffloadConv, rp)
	for _, nd := range net.Nodes {
		got := pl.OffloadTensor[p.Out[nd.ID].ID]
		want := nd.L.Type == layers.Conv
		if got != want {
			t.Errorf("%s (%s): offload=%v want %v", nd.Name(), nd.L.Type, got, want)
		}
	}
	// Gradient tensors are never offloaded.
	for _, dx := range p.DX {
		if dx != nil && pl.OffloadTensor[dx.ID] {
			t.Error("gradient tensor marked for offload")
		}
	}
}

func TestOffloadConvAndKeptIncludesJoins(t *testing.T) {
	net := nnet.ResNet(50, 4)
	p := program.Build(net)
	rp := recompute.BuildPlan(p, recompute.CostAware)
	pl := BuildPlan(p, OffloadConvAndKept, rp)
	joins, offloadedJoins := 0, 0
	for _, nd := range net.Nodes {
		if nd.L.Type == layers.Eltwise {
			joins++
			if pl.OffloadTensor[p.Out[nd.ID].ID] {
				offloadedJoins++
			}
		}
	}
	if joins == 0 || offloadedJoins != joins {
		t.Errorf("offloaded %d of %d join outputs, want all", offloadedJoins, joins)
	}
	// Dropped (recomputable) tensors are not offloaded.
	for _, nd := range net.Nodes {
		if rp.Drop[nd.ID] && pl.OffloadTensor[p.Out[nd.ID].ID] {
			t.Errorf("dropped tensor %s marked for offload", nd.Name())
		}
	}
}

func TestSmallTensorsNeverOffloaded(t *testing.T) {
	net := nnet.AlexNet(32)
	p := program.Build(net)
	rp := recompute.BuildPlan(p, recompute.None)
	pl := BuildPlan(p, OffloadSwapAll, rp)
	for _, nd := range net.Nodes {
		switch nd.L.Type {
		case layers.FC, layers.Softmax, layers.Dropout, layers.Data:
			if pl.OffloadTensor[p.Out[nd.ID].ID] {
				t.Errorf("%s output offloaded despite §3.3.1 exclusion", nd.L.Type)
			}
		}
	}
}

func TestSwapAllKeepsJoinsResident(t *testing.T) {
	net := nnet.ResNet(50, 4)
	p := program.Build(net)
	rp := recompute.BuildPlan(p, recompute.None)
	pl := BuildPlan(p, OffloadSwapAll, rp)
	for _, nd := range net.Nodes {
		if nd.L.Type == layers.Eltwise && pl.OffloadTensor[p.Out[nd.ID].ID] {
			t.Errorf("swap-all must keep join %s resident", nd.Name())
		}
		if nd.L.Type == layers.BN && !pl.OffloadTensor[p.Out[nd.ID].ID] {
			t.Errorf("swap-all must offload single-consumer %s", nd.Name())
		}
	}
}

func TestLastFwdReadAndFirstBwdNeed(t *testing.T) {
	net := nnet.AlexNet(8)
	p := program.Build(net)
	rp := recompute.BuildPlan(p, recompute.None)
	pl := BuildPlan(p, OffloadConv, rp)
	byName := make(map[string]*nnet.Node)
	for _, nd := range net.Nodes {
		byName[nd.Name()] = nd
	}
	conv1 := p.Out[byName["conv1"].ID]
	// conv1.y is read forward by relu1 and backward first by relu1's
	// backward (cuDNN activation backward takes x).
	if got, want := pl.LastFwdRead[conv1.ID], p.FwdStep[byName["relu1"].ID]; got != want {
		t.Errorf("conv1.y lastFwdRead = %d, want %d (relu1 fwd)", got, want)
	}
	if got, want := pl.FirstBwdNeed[conv1.ID], p.BwdStep[byName["relu1"].ID]; got != want {
		t.Errorf("conv1.y firstBwdNeed = %d, want %d (relu1 bwd)", got, want)
	}
}

func TestReplaySeedsPullNeedsForward(t *testing.T) {
	net := nnet.AlexNet(8)
	p := program.Build(net)
	rp := recompute.BuildPlan(p, recompute.CostAware)
	pl := BuildPlan(p, OffloadConv, rp)
	byName := make(map[string]*nnet.Node)
	for _, nd := range net.Nodes {
		byName[nd.Name()] = nd
	}
	// conv1.y seeds the replay of [relu1,lrn1,pool1], which triggers at
	// conv2's backward (the first reader of pool1.y). Its first need
	// must therefore be no later than conv2's backward step.
	conv1 := p.Out[byName["conv1"].ID]
	if pl.FirstBwdNeed[conv1.ID] > p.BwdStep[byName["conv2"].ID] {
		t.Errorf("replay seed need %d is after the segment trigger %d",
			pl.FirstBwdNeed[conv1.ID], p.BwdStep[byName["conv2"].ID])
	}
}

func TestPrefetchTriggersPrecedeNeeds(t *testing.T) {
	for _, build := range []func(int) *nnet.Net{nnet.AlexNet, nnet.VGG16} {
		net := build(4)
		p := program.Build(net)
		rp := recompute.BuildPlan(p, recompute.CostAware)
		pl := BuildPlan(p, OffloadConv, rp)
		for trigger, ids := range pl.PrefetchAt {
			st := &p.Steps[trigger]
			if st.Phase != program.Backward || st.Node.L.Type != layers.Conv {
				t.Errorf("%s: prefetch trigger %d is not a CONV backward step", net.Name, trigger)
			}
			for _, id := range ids {
				if pl.FirstBwdNeed[id] <= trigger {
					t.Errorf("%s: tensor %d prefetched at %d but needed at %d",
						net.Name, id, trigger, pl.FirstBwdNeed[id])
				}
			}
		}
	}
}

func TestEveryOffloadedTensorWithNeedHasTriggerOrIsEarly(t *testing.T) {
	net := nnet.VGG16(4)
	p := program.Build(net)
	rp := recompute.BuildPlan(p, recompute.CostAware)
	pl := BuildPlan(p, OffloadConv, rp)
	scheduled := make(map[int]bool)
	for _, ids := range pl.PrefetchAt {
		for _, id := range ids {
			scheduled[id] = true
		}
	}
	firstConvBwd := -1
	for si := range p.Steps {
		st := &p.Steps[si]
		if st.Phase == program.Backward && st.Node.L.Type == layers.Conv {
			firstConvBwd = si
			break
		}
	}
	for id, off := range pl.OffloadTensor {
		if !off || pl.FirstBwdNeed[id] < 0 || scheduled[id] {
			continue
		}
		// Unscheduled tensors must be needed before the first CONV
		// backward step (no earlier trigger exists): they are fetched
		// on demand.
		if pl.FirstBwdNeed[id] > firstConvBwd {
			t.Errorf("tensor %d (need %d) has no prefetch trigger", id, pl.FirstBwdNeed[id])
		}
	}
}

func TestOffloadableBytes(t *testing.T) {
	net := nnet.AlexNet(200)
	p := program.Build(net)
	rp := recompute.BuildPlan(p, recompute.None)
	pl := BuildPlan(p, OffloadConv, rp)
	// Five conv outputs: 221.56+142.38+49.51+49.51+33.01 = 495.97 MiB.
	got := float64(pl.OffloadableBytes(p)) / (1 << 20)
	if got < 495.9 || got > 496.1 {
		t.Errorf("offloadable = %.2f MiB, want ~495.97", got)
	}
}

func TestModeString(t *testing.T) {
	if OffloadConv.String() != "conv" || OffloadConvAndKept.String() != "conv+kept" {
		t.Error("mode names wrong")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode must print")
	}
}
