// Package utp plans the Unified Tensor Pool's offloading and
// prefetching (§3.3): which forward tensors leave the GPU for pinned
// host memory, when their GPU copies become reclaimable, and at which
// backward step each tensor's prefetch is triggered so the H2D copy
// overlaps the backward computation of one whole checkpoint interval.
//
// Following §3.3.1, only CONV outputs are offloaded: POOL/ACT/BN/LRN
// together hold ~50% of the memory but only ~20% of the compute, so
// their transfers cannot hide behind computation (they are recomputed
// instead, §3.4), while Dropout/Softmax/FC tensors are too small to be
// worth a transfer.
package utp

import (
	"repro/internal/layers"
	"repro/internal/program"
	"repro/internal/recompute"
)

// Mode selects which forward tensors the pool offloads.
type Mode uint8

// Offload modes.
const (
	// OffloadNone disables the UTP (everything stays on GPU).
	OffloadNone Mode = iota
	// OffloadConv offloads CONV outputs only — the paper's §3.3.1
	// protocol, used when recomputation handles the cheap layers.
	OffloadConv
	// OffloadConvAndKept offloads CONV outputs plus the large
	// non-recomputable tensors (join outputs and fan-out tensors with
	// several consumers, which carry long-range dependencies across
	// recomputation segments). Without this a deep non-linear network
	// keeps O(depth) join tensors resident, contradicting the paper's
	// peak_m = max(l_i) claim; this is SuperNeurons' mode.
	OffloadConvAndKept
	// OffloadSwapAll offloads every sizable single-consumer forward
	// output (CONV plus the cheap layers' outputs) — the
	// TensorFlow-style "swap long-lived tensors" policy the paper
	// compares against. Join outputs and fan-out tensors stay
	// resident: static swap heuristics keyed on topological distance
	// cannot safely move tensors with long-range, multi-consumer
	// dependencies.
	OffloadSwapAll
)

var modeNames = [...]string{"none", "conv", "conv+kept", "swap-all"}

// String returns the mode name.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return "mode(?)"
}

// tooSmallToOffload mirrors §3.3.1: Dropout, Softmax and FC outputs
// hold under 1% of total memory, so transferring them is never
// fruitful; the data layer is re-read from the input pipeline.
func tooSmallToOffload(t layers.Type) bool {
	switch t {
	case layers.FC, layers.Softmax, layers.Dropout, layers.Data:
		return true
	}
	return false
}

// Plan is the resolved offload/prefetch schedule for one program.
type Plan struct {
	// OffloadTensor[tensorID] marks forward outputs the UTP moves to
	// pinned host memory during the forward pass.
	OffloadTensor []bool
	// LastFwdRead[tensorID] is the last forward step reading the
	// tensor; the GPU copy of an offloaded tensor is reclaimable once
	// this step has executed and the D2H transfer completed.
	LastFwdRead []int
	// FirstBwdNeed[tensorID] is the first backward step that needs the
	// tensor resident again (directly, or as the replay seed of a
	// recomputation segment). -1 if never needed again.
	FirstBwdNeed []int
	// PrefetchAt[stepIndex] lists tensor IDs whose prefetch is
	// triggered when the executor reaches that backward step: the
	// latest CONV backward step that strictly precedes the tensor's
	// first backward need. Tensors with no earlier CONV trigger are
	// fetched on demand.
	PrefetchAt map[int][]int
}

// BuildPlan derives the schedule from the program, the offload mode
// and the recomputation plan (replay seeds must be back on the GPU
// before their segment replays).
func BuildPlan(p *program.Program, mode Mode, rp *recompute.Plan) *Plan {
	nT := p.Reg.Len()
	pl := &Plan{
		OffloadTensor: make([]bool, nT),
		LastFwdRead:   make([]int, nT),
		FirstBwdNeed:  make([]int, nT),
		PrefetchAt:    make(map[int][]int),
	}
	for i := range pl.LastFwdRead {
		pl.LastFwdRead[i] = -1
		pl.FirstBwdNeed[i] = -1
	}

	for _, nd := range p.Net.Nodes {
		if tooSmallToOffload(nd.L.Type) {
			continue
		}
		off := false
		switch mode {
		case OffloadConv:
			off = nd.L.IsOffloadable()
		case OffloadConvAndKept:
			off = nd.L.IsOffloadable() || !recompute.Droppable(nd)
		case OffloadSwapAll:
			off = nd.L.IsOffloadable() || recompute.Droppable(nd)
		}
		if off {
			pl.OffloadTensor[p.Out[nd.ID].ID] = true
		}
	}

	// Forward read horizon and direct backward needs.
	for si := range p.Steps {
		st := &p.Steps[si]
		for _, t := range st.Reads {
			if st.Phase == program.Forward {
				pl.LastFwdRead[t.ID] = si
			} else if pl.FirstBwdNeed[t.ID] < 0 {
				pl.FirstBwdNeed[t.ID] = si
			}
		}
		// The producing step itself counts as a forward use.
		if st.Phase == program.Forward {
			for _, t := range st.Writes {
				if pl.LastFwdRead[t.ID] < si {
					pl.LastFwdRead[t.ID] = si
				}
			}
		}
	}

	// Replay seeds: the first backward step that reads any dropped
	// member of a segment triggers its replay, which reads the
	// checkpoint's output. Pull the seed's first backward need forward
	// to that trigger step.
	for _, seg := range rp.Segments {
		if seg.Checkpoint == nil {
			continue
		}
		trigger := -1
		for _, m := range seg.Members {
			if fb := pl.FirstBwdNeed[p.Out[m.ID].ID]; fb >= 0 && (trigger < 0 || fb < trigger) {
				trigger = fb
			}
		}
		if trigger < 0 {
			continue
		}
		seed := p.Out[seg.Checkpoint.ID]
		if pl.FirstBwdNeed[seed.ID] < 0 || trigger < pl.FirstBwdNeed[seed.ID] {
			pl.FirstBwdNeed[seed.ID] = trigger
		}
	}

	// Prefetch triggers: the latest CONV backward step strictly before
	// the first need ("at any CONV layer in the backward, the runtime
	// asynchronously fetches the required tensors for the previous
	// CONV layer").
	var convBwdSteps []int
	for si := range p.Steps {
		st := &p.Steps[si]
		if st.Phase == program.Backward && st.Node.L.IsOffloadable() {
			convBwdSteps = append(convBwdSteps, si)
		}
	}
	for id := range pl.OffloadTensor {
		if !pl.OffloadTensor[id] {
			continue
		}
		need := pl.FirstBwdNeed[id]
		if need < 0 {
			continue
		}
		trigger := -1
		for _, cs := range convBwdSteps {
			if cs < need {
				trigger = cs
			} else {
				break
			}
		}
		if trigger >= 0 {
			pl.PrefetchAt[trigger] = append(pl.PrefetchAt[trigger], id)
		}
	}
	return pl
}

// OffloadableBytes sums the footprint of all tensors the plan offloads
// (the per-iteration D2H traffic of the eager protocol).
func (pl *Plan) OffloadableBytes(p *program.Program) int64 {
	var sum int64
	for id, off := range pl.OffloadTensor {
		if off {
			sum += p.Reg.Get(id).Bytes()
		}
	}
	return sum
}
