package superneurons

import (
	"testing"

	"repro/internal/gpumem"
	"repro/internal/hw"
	"repro/internal/liveness"
	"repro/internal/nnet"
	"repro/internal/program"
	"repro/internal/recompute"
	"repro/internal/sim"
)

// Micro-benchmarks of the library's own hot paths, complementing the
// per-experiment harness above.

// BenchmarkPoolAllocFree measures the heap-based GPU memory pool's
// allocate/free pair — the operation whose amortization Table 2 is
// about.
func BenchmarkPoolAllocFree(b *testing.B) {
	p := gpumem.NewPool(1<<30, sim.Microsecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := p.Alloc(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Free(a.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolFragmented measures first-fit allocation on a pool with
// a long free list.
func BenchmarkPoolFragmented(b *testing.B) {
	p := gpumem.NewPool(1<<30, sim.Microsecond)
	// Build a fragmented free list: allocate 512 slots, free every
	// other one.
	var ids []int64
	for i := 0; i < 512; i++ {
		a, err := p.Alloc(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, a.ID)
	}
	for i := 0; i < len(ids); i += 2 {
		if err := p.Free(ids[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := p.Alloc(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Free(a.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteConstruction measures Algorithm 1 on ResNet-152 (567
// basic layers with joins).
func BenchmarkRouteConstruction(b *testing.B) {
	net := nnet.ResNet(152, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := net.Route(); len(r) != len(net.Nodes) {
			b.Fatal("bad route")
		}
	}
}

// BenchmarkProgramLowering measures lowering ResNet-50 to the tensor
// program.
func BenchmarkProgramLowering(b *testing.B) {
	net := nnet.ResNet(50, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		program.Build(net)
	}
}

// BenchmarkLivenessAnalysis measures the data-flow analysis on
// Inception-v4 (~500 layers).
func BenchmarkLivenessAnalysis(b *testing.B) {
	p := program.Build(nnet.InceptionV4(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		liveness.Analyze(p)
	}
}

// BenchmarkRecomputePlan measures segment planning on ResNet-101.
func BenchmarkRecomputePlan(b *testing.B) {
	p := program.Build(nnet.ResNet(101, 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recompute.BuildPlan(p, recompute.CostAware)
	}
}

// BenchmarkIteration measures simulating one full SuperNeurons
// training iteration of ResNet-50 at batch 32 (the simulator's own
// speed, in real ns/op).
func BenchmarkIteration(b *testing.B) {
	net := nnet.ResNet(50, 32)
	cfg := DefaultConfig(hw.TeslaK40c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeepIteration measures simulating a 1514-deep Table-4
// ResNet iteration at batch 4 — the scalability case.
func BenchmarkDeepIteration(b *testing.B) {
	net := nnet.ResNetTable4(4, 460)
	cfg := DefaultConfig(hw.TeslaK40c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
