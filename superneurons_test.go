package superneurons

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestBuildKnownNetworks(t *testing.T) {
	for _, name := range Networks() {
		net, err := Build(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if net.Batch() != 4 {
			t.Errorf("%s: batch = %d", name, net.Batch())
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("LeNet", 4); err == nil {
		t.Error("unknown network must error")
	}
	if _, err := Build("AlexNet", 0); err == nil {
		t.Error("non-positive batch must error")
	}
}

func TestBuildResNetDepth(t *testing.T) {
	net := BuildResNet(2, 3, 4, 6, 3)
	if net.Name != "ResNet50" {
		t.Errorf("name = %s", net.Name)
	}
}

func TestRunAndSummary(t *testing.T) {
	net, _ := Build("AlexNet", 64)
	r, err := Run(net, DefaultConfig(TeslaK40c))
	if err != nil {
		t.Fatal(err)
	}
	s := Summary(r)
	for _, want := range []string{"AlexNet batch 64", "peak memory", "img/s", "tensor cache"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestBaselineVsDefaultPeak(t *testing.T) {
	net, _ := Build("AlexNet", 200)
	rb, err := Run(net, BaselineConfig(TeslaK40c))
	if err != nil {
		t.Fatal(err)
	}
	net2, _ := Build("AlexNet", 200)
	rd, err := Run(net2, DefaultConfig(TeslaK40c))
	if err != nil {
		t.Fatal(err)
	}
	if rd.PeakResident >= rb.PeakResident {
		t.Errorf("default config peak %d must beat baseline %d", rd.PeakResident, rb.PeakResident)
	}
}

func TestOOMSurfacesSentinel(t *testing.T) {
	net, _ := Build("ResNet152", 2048)
	_, err := Run(net, BaselineConfig(TeslaK40c))
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestFrameworksFacade(t *testing.T) {
	if len(Frameworks()) != 5 {
		t.Errorf("frameworks = %d, want 5", len(Frameworks()))
	}
	f, ok := FrameworkByName("Caffe")
	if !ok {
		t.Fatal("Caffe missing")
	}
	b, err := MaxBatch(f, "AlexNet", TeslaK40c, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Error("Caffe must train AlexNet at some batch")
	}
	if _, err := MaxBatch(f, "nope", TeslaK40c, 16); err == nil {
		t.Error("unknown network must error")
	}
}

func TestThroughputHonorsFallbackChain(t *testing.T) {
	// TensorFlow's primary (no-swap) config cannot fit ResNet-50 at
	// batch 200; Throughput must fall through to its swap config
	// instead of failing.
	tf, _ := FrameworkByName("TensorFlow")
	s, err := Throughput(tf, "ResNet50", 200, TeslaK40c)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatal("fallback config should have produced throughput")
	}
	if _, err := Throughput(tf, "nope", 1, TeslaK40c); err == nil {
		t.Error("unknown network must error")
	}
}

func TestPeakSteps(t *testing.T) {
	net, _ := Build("AlexNet", 64)
	r, err := Run(net, DefaultConfig(TeslaK40c))
	if err != nil {
		t.Fatal(err)
	}
	top := PeakSteps(r, 3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if !strings.Contains(top[0], "MiB") {
		t.Errorf("entry format: %q", top[0])
	}
}

func TestClusterSchedulingAPI(t *testing.T) {
	cluster := Cluster{Device: TeslaK40c, Devices: 2}
	jobs := DefaultClusterTrace()
	if len(jobs) == 0 {
		t.Fatal("bundled trace is empty")
	}

	est, err := EstimateJob("AlexNet", 64, "naive", TeslaK40c)
	if err != nil {
		t.Fatal(err)
	}
	if est.PeakBytes <= 0 || est.IterTime <= 0 {
		t.Fatalf("degenerate estimate %+v", est)
	}

	results, err := CompareSchedulers(cluster, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(SchedulerPolicies()) {
		t.Fatalf("%d results for %d policies", len(results), len(SchedulerPolicies()))
	}
	var fifo, packing *ScheduleResult
	for _, r := range results {
		switch r.Policy {
		case SchedFIFO.Name:
			fifo = r
		case SchedPacking.Name:
			packing = r
		}
	}
	if fifo == nil || packing == nil {
		t.Fatal("fifo/packing results missing")
	}
	if packing.Utilization <= fifo.Utilization {
		t.Errorf("packing utilization %.4f not above fifo %.4f", packing.Utilization, fifo.Utilization)
	}

	s, err := NewScheduler(cluster, SchedPriority)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two scheduler runs over the same trace differ")
	}
}

func TestDynamicFacade(t *testing.T) {
	if got := RampSchedule(16, 48, 3); len(got) != 3 || got[0] != 16 || got[2] != 48 {
		t.Errorf("RampSchedule = %v", got)
	}
	if got := BucketSchedule(2, 8, 16); len(got) != 4 || got[3] != 16 {
		t.Errorf("BucketSchedule = %v", got)
	}
	if _, ok := DynamicSchedules()["ramp50"]; !ok {
		t.Error("bundled ramp50 schedule missing")
	}

	cfg := Config{Device: TeslaK40c, BatchSchedule: BatchSchedule{8, 16}, AdaptivePlan: true}
	cfg.UseMemPool = true
	cfg.Liveness = true
	r, err := RunDynamic("AlexNet", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Iters) != 2 || r.Iters[0].Batch != 8 || r.Iters[1].Batch != 16 {
		t.Errorf("dynamic run iterations %+v", r.Iters)
	}
	if r.Network != "AlexNet" || r.OOMFailures != 0 {
		t.Errorf("unexpected result: network %q, %d failures", r.Network, r.OOMFailures)
	}

	if _, err := RunDynamic("NoSuchNet", cfg); err == nil {
		t.Error("unknown network accepted")
	}

	jobs := DynamicClusterTrace()
	if len(jobs) == 0 {
		t.Fatal("dynamic cluster trace empty")
	}
	dynamic := 0
	for _, j := range jobs {
		if len(j.BatchSchedule) > 1 {
			dynamic++
		}
	}
	if dynamic == 0 {
		t.Error("dynamic cluster trace has no dynamic jobs")
	}
}

func TestClusterConstructionFacade(t *testing.T) {
	jobs, plan := FaultClusterTrace()
	if len(jobs) == 0 || plan.Empty() {
		t.Fatal("fault cluster trace empty")
	}
	c, err := NewCluster(UniformCluster(TeslaK40c, FaultClusterDevices),
		WithClusterTopology(DefaultClusterTopology()), WithAllReduceOverlap(),
		WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	want := Cluster{Device: TeslaK40c, Devices: FaultClusterDevices,
		Topology: DefaultClusterTopology(), Overlap: true, Faults: plan}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("NewCluster = %+v, want literal %+v", c, want)
	}
	s, err := NewScheduler(c, SchedTopoPacking)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	shrinks, restores := 0, 0
	for _, j := range r.Jobs {
		if j.Rejected {
			t.Errorf("job %s rejected: %s", j.ID, j.Reason)
		}
		shrinks += j.Shrinks
		restores += j.Restores
	}
	if shrinks == 0 || restores == 0 {
		t.Errorf("fault trace produced shrinks=%d restores=%d", shrinks, restores)
	}

	cj, err := NewCluster(UniformCluster(TeslaK40c, 2), WithCrossJobPlanning(0))
	if err != nil {
		t.Fatal(err)
	}
	if !cj.CrossJob || cj.HostSpillBytes != 0 {
		t.Errorf("WithCrossJobPlanning(0) built %+v", cj)
	}
}
